#include "curb/core/baselines.hpp"

#include <gtest/gtest.h>

#include "curb/core/simulation.hpp"
#include "curb/net/topology.hpp"

namespace curb::core {
namespace {

using namespace curb::sim::literals;

TEST(FlatPbft, ServesRequests) {
  FlatPbftBaseline flat{net::random_geo_topology(8, 10, 5), CurbOptions{}};
  const RoundMetrics m = flat.run_round(10);
  EXPECT_EQ(m.issued, 10u);
  EXPECT_EQ(m.accepted, 10u);
  EXPECT_GT(m.mean_latency_ms, 0.0);
}

TEST(FlatPbft, RejectsTooFewControllers) {
  EXPECT_THROW(FlatPbftBaseline(net::random_geo_topology(3, 4, 5), CurbOptions{}),
               std::invalid_argument);
}

TEST(FlatPbft, MessagesGrowQuadratically) {
  // Doubling controllers should roughly quadruple per-round messages.
  CurbOptions opts;
  FlatPbftBaseline small{net::random_geo_topology(8, 8, 5), opts};
  FlatPbftBaseline big{net::random_geo_topology(16, 8, 5), opts};
  const auto m_small = small.run_round(8);
  const auto m_big = big.run_round(8);
  ASSERT_GT(m_small.messages, 0u);
  const double ratio =
      static_cast<double>(m_big.messages) / static_cast<double>(m_small.messages);
  EXPECT_GT(ratio, 2.5);  // super-linear
}

TEST(FlatPbft, CurbUsesFewerMessagesAtScale) {
  // Theorem 1, head-to-head: same topology, same workload.
  CurbOptions opts;
  opts.controller_capacity = 10.0;
  opts.op_time_mode = OpTimeMode::kFixed;
  const auto topo = net::random_geo_topology(16, 32, 11);

  CurbSimulation curb{topo, opts};
  FlatPbftBaseline flat{topo, opts};
  const auto m_curb = curb.run_packet_in_round();
  const auto m_flat = flat.run_round(32);
  ASSERT_GT(m_curb.accepted, 0u);
  ASSERT_GT(m_flat.accepted, 0u);
  // Curb handles at least as many requests (egress PKT-INs included) with
  // fewer control messages per handled request.
  const double curb_per_req =
      static_cast<double>(m_curb.messages) / static_cast<double>(m_curb.accepted);
  const double flat_per_req =
      static_cast<double>(m_flat.messages) / static_cast<double>(m_flat.accepted);
  EXPECT_LT(curb_per_req, flat_per_req);
}

TEST(SingleController, ServesRequestsWithoutConsensus) {
  SingleControllerBaseline single{net::random_geo_topology(4, 10, 5), {}};
  const RoundMetrics m = single.run_round(10);
  EXPECT_EQ(m.accepted, 10u);
  // 2 messages per request: the request and the reply.
  EXPECT_EQ(m.messages, 20u);
}

TEST(SingleController, SaturatesUnderLoad) {
  // Service time 50 ms: 30 concurrent requests queue up; the last one waits
  // ~ 30 * 50 ms, so max latency is far above the mean of a light round.
  SingleControllerBaseline::Options opts;
  opts.service_time = 50_ms;
  SingleControllerBaseline single{net::random_geo_topology(4, 30, 5), opts};
  const RoundMetrics m = single.run_round(30);
  EXPECT_EQ(m.accepted, 30u);
  EXPECT_GT(m.max_latency_ms, 1000.0);  // queueing dominates
}

TEST(PrimaryBackup, ServesRequestsInOneRoundTrip) {
  PrimaryBackupBaseline pb{net::random_geo_topology(8, 10, 5), {}};
  const RoundMetrics m = pb.run_round(10);
  EXPECT_EQ(m.accepted, 10u);
  // f+1 = 2 replicas: 2 requests + 2 replies per switch.
  EXPECT_EQ(m.messages, 40u);
  EXPECT_EQ(pb.mismatches_detected(), 0u);
}

TEST(PrimaryBackup, ComparatorDetectsCorruptReplica) {
  PrimaryBackupBaseline pb{net::random_geo_topology(8, 10, 5), {}};
  // Corrupt one replica of switch 0.
  const auto replicas = pb.replicas_of(0);
  ASSERT_EQ(replicas.size(), 2u);
  pb.set_bad_config(replicas[1], true);
  const RoundMetrics m = pb.run_round(10);
  // Switch 0's replies disagree -> detected but NOT accepted (the baseline
  // has no agreed recovery, unlike Curb's RE-ASS).
  EXPECT_GE(pb.mismatches_detected(), 1u);
  EXPECT_LT(m.accepted, m.issued);
}

TEST(PrimaryBackup, FasterButChatterLessThanCurbPerRequest) {
  const auto topo = net::random_geo_topology(8, 10, 5);
  PrimaryBackupBaseline pb{topo, {}};
  const RoundMetrics pm = pb.run_round(10);

  CurbOptions opts;
  opts.controller_capacity = 8.0;
  opts.op_time_mode = OpTimeMode::kFixed;
  CurbSimulation curb{topo, opts};
  const RoundMetrics cm = curb.run_packet_in_round();

  ASSERT_GT(pm.accepted, 0u);
  ASSERT_GT(cm.accepted, 0u);
  // The no-consensus baseline is faster and cheaper per request — that is
  // exactly the trade the paper argues is not worth the lost guarantees.
  EXPECT_LT(pm.mean_latency_ms, cm.mean_latency_ms);
  EXPECT_LT(static_cast<double>(pm.messages) / static_cast<double>(pm.accepted),
            static_cast<double>(cm.messages) / static_cast<double>(cm.accepted));
}

TEST(PrimaryBackup, RejectsTooFewControllers) {
  PrimaryBackupBaseline::Options opts;
  opts.f = 5;
  EXPECT_THROW(PrimaryBackupBaseline(net::random_geo_topology(3, 4, 5), opts),
               std::invalid_argument);
}

TEST(SingleController, RejectsTopologyWithoutController) {
  net::Topology topo;
  topo.add_node("sw", net::NodeKind::kSwitch, {0, 0});
  EXPECT_THROW(SingleControllerBaseline(topo, {}), std::invalid_argument);
}

}  // namespace
}  // namespace curb::core
