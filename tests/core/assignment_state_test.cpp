#include "curb/core/assignment_state.hpp"

#include <gtest/gtest.h>

namespace curb::core {
namespace {

/// 6 switches over 8 controllers; switches 0-2 share {0,1,2,3},
/// switches 3-5 share {4,5,6,7}.
opt::Assignment two_cliques() {
  opt::Assignment a{6, 8};
  for (std::size_t sw = 0; sw < 3; ++sw) {
    for (std::size_t c = 0; c < 4; ++c) a.set(sw, c, true);
  }
  for (std::size_t sw = 3; sw < 6; ++sw) {
    for (std::size_t c = 4; c < 8; ++c) a.set(sw, c, true);
  }
  return a;
}

TEST(AssignmentState, GroupsDeduplicateIdenticalSets) {
  const auto state = AssignmentState::build(two_cliques(), 1, 0);
  ASSERT_EQ(state.groups().size(), 2u);
  EXPECT_EQ(state.group(0).members, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(state.group(1).members, (std::vector<std::uint32_t>{4, 5, 6, 7}));
  EXPECT_EQ(state.group(0).switches, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(state.group_of_switch(4), 1u);
}

TEST(AssignmentState, DefaultLeaderIsLowestId) {
  const auto state = AssignmentState::build(two_cliques(), 1, 0);
  EXPECT_EQ(state.group(0).leader, 0u);
  EXPECT_EQ(state.group(1).leader, 4u);
}

TEST(AssignmentState, LeaderPersistsAcrossRebuild) {
  auto prev = AssignmentState::build(two_cliques(), 1, 0);
  // Rebuild with controller 0 removed from group 0: leader falls back;
  // but if the previous leader (0) survives, it must be kept.
  const auto same = AssignmentState::build(two_cliques(), 1, 1, {}, &prev);
  EXPECT_EQ(same.group(0).leader, prev.group(0).leader);

  // Remove controller 0 from switch 0-2's group.
  opt::Assignment changed = two_cliques();
  for (std::size_t sw = 0; sw < 3; ++sw) {
    changed.set(sw, 0, false);
    changed.set(sw, 4, true);
  }
  const auto next = AssignmentState::build(changed, 1, 2, {0}, &prev);
  // Old leader 0 is gone; new leader is the lowest surviving member.
  EXPECT_EQ(next.group(next.group_of_switch(0)).leader, 1u);
}

TEST(AssignmentState, FinalCommitteeDrawsAcrossGroups) {
  const auto state = AssignmentState::build(two_cliques(), 1, 0);
  // 2 groups provide 2 members; fallback fills to 3f+1 = 4 from remaining.
  EXPECT_EQ(state.final_committee().size(), 4u);
  // One member from group 0 (lowest: 0), one from group 1 (lowest: 4),
  // then fallback 1, 2 by ascending id -> sorted {0, 1, 2, 4}.
  EXPECT_EQ(state.final_committee(), (std::vector<std::uint32_t>{0, 1, 2, 4}));
  EXPECT_EQ(state.final_leader(), 4u);  // highest id in the committee
}

TEST(AssignmentState, FinalCommitteeSkipsByzantineInFallback) {
  const auto state = AssignmentState::build(two_cliques(), 1, 0, {1});
  for (const auto member : state.final_committee()) EXPECT_NE(member, 1u);
}

TEST(AssignmentState, ManyGroupsElectDistinctMembers) {
  // 5 switches, each with a distinct overlapping group; f=1 -> 4 seats from
  // the first 4 groups, each electing a member not yet elected.
  opt::Assignment a{5, 8};
  for (std::size_t sw = 0; sw < 5; ++sw) {
    for (std::size_t k = 0; k < 4; ++k) a.set(sw, (sw + k) % 8, true);
  }
  const auto state = AssignmentState::build(a, 1, 0);
  ASSERT_EQ(state.groups().size(), 5u);
  const auto& committee = state.final_committee();
  ASSERT_EQ(committee.size(), 4u);
  // Group 0 = {0,1,2,3} elects 0; group 1 = {1,2,3,4} elects 1;
  // group 2 elects 2; group 3 elects 3.
  EXPECT_EQ(committee, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(AssignmentState, MembershipQueries) {
  const auto state = AssignmentState::build(two_cliques(), 1, 0);
  EXPECT_EQ(state.groups_of_controller(2), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(state.groups_of_controller(5), (std::vector<std::uint32_t>{1}));
  EXPECT_TRUE(state.in_final_committee(0));
  EXPECT_FALSE(state.in_final_committee(7));
  EXPECT_EQ(state.replica_index(0, 2), 2u);
  EXPECT_EQ(state.replica_index(1, 2), std::nullopt);
  EXPECT_EQ(state.final_replica_index(4), 3u);
}

TEST(AssignmentState, SerializeRoundTrip) {
  auto prev = AssignmentState::build(two_cliques(), 1, 0);
  const auto state = AssignmentState::build(two_cliques(), 1, 7, {6}, &prev);
  const auto bytes = state.serialize();
  const auto restored = AssignmentState::deserialize(bytes);
  EXPECT_EQ(restored.epoch(), 7u);
  EXPECT_EQ(restored.f(), 1u);
  EXPECT_EQ(restored.byzantine(), (std::vector<std::uint32_t>{6}));
  EXPECT_EQ(restored.groups().size(), state.groups().size());
  for (std::size_t g = 0; g < state.groups().size(); ++g) {
    EXPECT_EQ(restored.group(static_cast<std::uint32_t>(g)).members,
              state.group(static_cast<std::uint32_t>(g)).members);
    EXPECT_EQ(restored.group(static_cast<std::uint32_t>(g)).leader,
              state.group(static_cast<std::uint32_t>(g)).leader);
  }
  EXPECT_EQ(restored.final_committee(), state.final_committee());
}

TEST(AssignmentState, SerializePreservesNonDefaultLeader) {
  auto prev = AssignmentState::build(two_cliques(), 1, 0);
  opt::Assignment changed = two_cliques();
  for (std::size_t sw = 0; sw < 3; ++sw) {
    changed.set(sw, 0, false);
    changed.set(sw, 5, true);
  }
  // Previous leader 0 gone -> leader 1. Now rebuild once more keeping 1.
  const auto mid = AssignmentState::build(changed, 1, 1, {}, &prev);
  const auto restored = AssignmentState::deserialize(mid.serialize());
  EXPECT_EQ(restored.group(restored.group_of_switch(0)).leader,
            mid.group(mid.group_of_switch(0)).leader);
}

TEST(AssignmentState, ByzantineListSortedAndUnique) {
  const auto state = AssignmentState::build(two_cliques(), 1, 0, {5, 1, 5, 3});
  EXPECT_EQ(state.byzantine(), (std::vector<std::uint32_t>{1, 3, 5}));
}

TEST(AssignmentState, RejectsEmptyGroup) {
  opt::Assignment a{2, 8};
  a.set(0, 0, true);  // switch 1 has no controllers
  EXPECT_THROW((void)AssignmentState::build(a, 1, 0), std::invalid_argument);
}

TEST(AssignmentState, RejectsTooFewControllersForCommittee) {
  opt::Assignment a{1, 3};
  for (std::size_t c = 0; c < 3; ++c) a.set(0, c, true);
  EXPECT_THROW((void)AssignmentState::build(a, 1, 0), std::invalid_argument);
}

TEST(AssignmentState, QueriesRejectBadIds) {
  const auto state = AssignmentState::build(two_cliques(), 1, 0);
  EXPECT_THROW((void)state.group(9), std::out_of_range);
  EXPECT_THROW((void)state.group_of_switch(99), std::out_of_range);
}

}  // namespace
}  // namespace curb::core
