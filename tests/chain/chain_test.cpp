#include "curb/chain/blockchain.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "curb/chain/block.hpp"
#include "curb/chain/transaction.hpp"
#include "curb/crypto/secp256k1.hpp"

namespace curb::chain {
namespace {

Transaction make_tx(std::uint64_t request_id,
                    RequestType type = RequestType::kPacketIn) {
  return Transaction{type, 3, 7, request_id, {0xaa, 0xbb}};
}

Block make_genesis() { return Block::create(0, crypto::Hash256{}, {}, 0, 0); }

TEST(Transaction, SerializeRoundTripUnsigned) {
  const Transaction tx = make_tx(42, RequestType::kReassign);
  const auto bytes = tx.serialize();
  EXPECT_EQ(Transaction::deserialize(bytes), tx);
}

TEST(Transaction, SerializeRoundTripSigned) {
  Transaction tx = make_tx(42);
  const auto key = crypto::KeyPair::from_seed("leader");
  tx.sign(key);
  const auto bytes = tx.serialize();
  const Transaction restored = Transaction::deserialize(bytes);
  EXPECT_EQ(restored, tx);
  EXPECT_TRUE(restored.verify(key.public_key()));
}

TEST(Transaction, IdStableUnderSigning) {
  Transaction tx = make_tx(1);
  const auto id_before = tx.id();
  tx.sign(crypto::KeyPair::from_seed("leader"));
  EXPECT_EQ(tx.id(), id_before);
}

TEST(Transaction, IdDiffersByContent) {
  EXPECT_NE(make_tx(1).id(), make_tx(2).id());
  EXPECT_NE(make_tx(1, RequestType::kPacketIn).id(), make_tx(1, RequestType::kReassign).id());
}

TEST(Transaction, VerifyFailsWrongKeyOrUnsigned) {
  Transaction tx = make_tx(9);
  EXPECT_FALSE(tx.verify(crypto::KeyPair::from_seed("any").public_key()));
  tx.sign(crypto::KeyPair::from_seed("alice"));
  EXPECT_FALSE(tx.verify(crypto::KeyPair::from_seed("bob").public_key()));
  EXPECT_TRUE(tx.verify(crypto::KeyPair::from_seed("alice").public_key()));
}

TEST(Transaction, DeserializeRejectsGarbage) {
  const std::vector<std::uint8_t> garbage{0x09, 0x01};
  EXPECT_THROW((void)Transaction::deserialize(garbage), std::invalid_argument);
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW((void)Transaction::deserialize(empty), std::out_of_range);
}

TEST(Block, CreateComputesMerkleRoot) {
  const Block b = Block::create(1, crypto::Hash256{}, {make_tx(1), make_tx(2)}, 123, 5);
  EXPECT_TRUE(b.well_formed());
  EXPECT_EQ(b.header().height, 1u);
  EXPECT_EQ(b.header().timestamp_us, 123u);
  EXPECT_EQ(b.header().proposer_id, 5u);
  EXPECT_EQ(b.transactions().size(), 2u);
}

TEST(Block, SerializeRoundTrip) {
  Transaction signed_tx = make_tx(7);
  signed_tx.sign(crypto::KeyPair::from_seed("k"));
  const Block b = Block::create(3, crypto::Sha256::digest("prev"),
                                {make_tx(1), signed_tx}, 999, 2);
  const auto bytes = b.serialize();
  EXPECT_EQ(Block::deserialize(bytes), b);
}

TEST(Block, HashChangesWithAnyHeaderField) {
  const Block base = Block::create(1, crypto::Hash256{}, {make_tx(1)}, 10, 0);
  EXPECT_NE(Block::create(2, crypto::Hash256{}, {make_tx(1)}, 10, 0).hash(), base.hash());
  EXPECT_NE(Block::create(1, crypto::Sha256::digest("x"), {make_tx(1)}, 10, 0).hash(),
            base.hash());
  EXPECT_NE(Block::create(1, crypto::Hash256{}, {make_tx(2)}, 10, 0).hash(), base.hash());
  EXPECT_NE(Block::create(1, crypto::Hash256{}, {make_tx(1)}, 11, 0).hash(), base.hash());
  EXPECT_NE(Block::create(1, crypto::Hash256{}, {make_tx(1)}, 10, 1).hash(), base.hash());
}

TEST(Block, EmptyBlockIsWellFormed) {
  EXPECT_TRUE(Block::create(1, crypto::Hash256{}, {}, 0, 0).well_formed());
}

TEST(Blockchain, StartsAtGenesis) {
  const Blockchain chain{make_genesis()};
  EXPECT_EQ(chain.height(), 0u);
  EXPECT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain.tip().hash(), chain.genesis().hash());
}

TEST(Blockchain, RejectsNonZeroGenesis) {
  EXPECT_THROW(Blockchain{Block::create(1, crypto::Hash256{}, {}, 0, 0)},
               std::invalid_argument);
}

TEST(Blockchain, AppendsLinkedBlocks) {
  Blockchain chain{make_genesis()};
  const Block b1 = Block::create(1, chain.tip().hash(), {make_tx(1)}, 10, 0);
  EXPECT_EQ(chain.append(b1), std::nullopt);
  const Block b2 = Block::create(2, chain.tip().hash(), {make_tx(2)}, 20, 1);
  EXPECT_EQ(chain.append(b2), std::nullopt);
  EXPECT_EQ(chain.height(), 2u);
  EXPECT_EQ(chain.at(1).hash(), b1.hash());
  EXPECT_EQ(chain.total_transactions(), 2u);
}

TEST(Blockchain, RejectsWrongHeight) {
  Blockchain chain{make_genesis()};
  const Block skip = Block::create(2, chain.tip().hash(), {}, 0, 0);
  EXPECT_EQ(chain.append(skip), AppendError::kWrongHeight);
}

TEST(Blockchain, RejectsWrongPrevHash) {
  Blockchain chain{make_genesis()};
  const Block bad = Block::create(1, crypto::Sha256::digest("not-the-tip"), {}, 0, 0);
  EXPECT_EQ(chain.append(bad), AppendError::kWrongPrevHash);
}

TEST(Blockchain, RejectsTamperedBody) {
  Blockchain chain{make_genesis()};
  const Block b = Block::create(1, chain.tip().hash(), {make_tx(1)}, 0, 0);
  // Tamper with the transaction payload inside the wire bytes: the config
  // bytes {0xaa, 0xbb} appear verbatim in the stream.
  auto bytes = b.serialize();
  bool flipped = false;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    if (bytes[i] == 0xaa && bytes[i + 1] == 0xbb) {
      bytes[i] = 0xac;
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped);
  const Block tampered = Block::deserialize(bytes);
  EXPECT_FALSE(tampered.well_formed());
  EXPECT_EQ(chain.append(tampered), AppendError::kBadMerkleRoot);
}

TEST(Blockchain, RejectsDuplicateTransactionAcrossBlocks) {
  Blockchain chain{make_genesis()};
  const Transaction tx = make_tx(1);
  EXPECT_EQ(chain.append(Block::create(1, chain.tip().hash(), {tx}, 0, 0)), std::nullopt);
  EXPECT_EQ(chain.append(Block::create(2, chain.tip().hash(), {tx}, 0, 0)),
            AppendError::kDuplicateTransaction);
}

TEST(Blockchain, TransactionIndexLookup) {
  Blockchain chain{make_genesis()};
  const Transaction tx1 = make_tx(1);
  const Transaction tx2 = make_tx(2);
  (void)chain.append(Block::create(1, chain.tip().hash(), {tx1}, 0, 0));
  (void)chain.append(Block::create(2, chain.tip().hash(), {tx2}, 0, 0));
  EXPECT_TRUE(chain.contains_transaction(tx1.id()));
  EXPECT_EQ(chain.find_transaction(tx2.id()), 2u);
  EXPECT_FALSE(chain.contains_transaction(make_tx(3).id()));
  EXPECT_EQ(chain.find_transaction(make_tx(3).id()), std::nullopt);
}

TEST(Blockchain, SameViewComparison) {
  Blockchain a{make_genesis()};
  Blockchain b{make_genesis()};
  EXPECT_TRUE(a.same_view_as(b));
  (void)a.append(Block::create(1, a.tip().hash(), {make_tx(1)}, 0, 0));
  EXPECT_FALSE(a.same_view_as(b));
  (void)b.append(Block::create(1, b.tip().hash(), {make_tx(1)}, 0, 0));
  EXPECT_TRUE(a.same_view_as(b));
}

TEST(Block, MerkleInclusionProof) {
  const Block b = Block::create(1, crypto::Hash256{},
                                {make_tx(1), make_tx(2), make_tx(3)}, 0, 0);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto proof = b.merkle_proof(i);
    EXPECT_TRUE(Block::verify_inclusion(b.transactions()[i], proof, b.header()));
  }
  // A proof for one tx does not validate another.
  EXPECT_FALSE(Block::verify_inclusion(b.transactions()[1], b.merkle_proof(0), b.header()));
  // Nor does it validate against a different header.
  const Block other = Block::create(1, crypto::Hash256{}, {make_tx(9)}, 0, 0);
  EXPECT_FALSE(
      Block::verify_inclusion(b.transactions()[0], b.merkle_proof(0), other.header()));
  EXPECT_THROW((void)b.merkle_proof(3), std::out_of_range);
}

TEST(Blockchain, SaveLoadRoundTrip) {
  Blockchain chain{make_genesis()};
  (void)chain.append(Block::create(1, chain.tip().hash(), {make_tx(1)}, 10, 0));
  (void)chain.append(Block::create(2, chain.tip().hash(), {make_tx(2), make_tx(3)}, 20, 1));

  std::stringstream stream;
  chain.save(stream);
  const Blockchain restored = Blockchain::load(stream);
  EXPECT_TRUE(restored.same_view_as(chain));
  EXPECT_EQ(restored.height(), 2u);
  EXPECT_EQ(restored.total_transactions(), 3u);
  EXPECT_TRUE(restored.contains_transaction(make_tx(3).id()));
}

TEST(Blockchain, LoadRejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW((void)Blockchain::load(empty), std::runtime_error);
  std::stringstream bad_magic{"XXXXXXXXXXXXXXXX"};
  EXPECT_THROW((void)Blockchain::load(bad_magic), std::runtime_error);
}

TEST(Blockchain, LoadRejectsTamperedStream) {
  Blockchain chain{make_genesis()};
  (void)chain.append(Block::create(1, chain.tip().hash(), {make_tx(1)}, 10, 0));
  std::stringstream stream;
  chain.save(stream);
  std::string bytes = stream.str();
  // Flip a byte inside the tx payload region (the 0xaa marker).
  const auto pos = bytes.find('\xaa');
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] = '\x13';
  std::stringstream tampered{bytes};
  EXPECT_THROW((void)Blockchain::load(tampered), std::runtime_error);
}

TEST(Blockchain, AtOutOfRangeThrows) {
  const Blockchain chain{make_genesis()};
  EXPECT_THROW((void)chain.at(5), std::out_of_range);
}

}  // namespace
}  // namespace curb::chain
