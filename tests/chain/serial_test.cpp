#include "curb/chain/serial.hpp"

#include <gtest/gtest.h>

namespace curb::chain {
namespace {

TEST(Serial, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(3.14159);
  ByteReader r{std::span<const std::uint8_t>{w.data()}};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(Serial, BytesAndStringRoundTrip) {
  ByteWriter w;
  w.bytes(std::vector<std::uint8_t>{1, 2, 3});
  w.str("hello");
  w.str("");
  ByteReader r{std::span<const std::uint8_t>{w.data()}};
  EXPECT_EQ(r.bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(Serial, FixedArrayRoundTrip) {
  std::array<std::uint8_t, 4> a{9, 8, 7, 6};
  ByteWriter w;
  w.fixed(a);
  ByteReader r{std::span<const std::uint8_t>{w.data()}};
  EXPECT_EQ(r.fixed<4>(), a);
}

TEST(Serial, TruncatedInputThrows) {
  ByteWriter w;
  w.u32(42);
  ByteReader r{std::span<const std::uint8_t>{w.data()}};
  EXPECT_THROW((void)r.u64(), std::out_of_range);
}

TEST(Serial, TruncatedBytesLengthThrows) {
  // Length prefix claims 100 bytes but only 2 follow.
  ByteWriter w;
  w.u32(100);
  w.u16(0);
  ByteReader r{std::span<const std::uint8_t>{w.data()}};
  EXPECT_THROW((void)r.bytes(), std::out_of_range);
}

TEST(Serial, RemainingTracksPosition) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r{std::span<const std::uint8_t>{w.data()}};
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_FALSE(r.done());
}

}  // namespace
}  // namespace curb::chain
