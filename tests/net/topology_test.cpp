#include "curb/net/topology.hpp"

#include <gtest/gtest.h>

#include "curb/net/geo.hpp"

namespace curb::net {
namespace {

Topology diamond() {
  // a - b
  // |   |
  // c - d     with a-b short, a-c long
  Topology t;
  const NodeId a = t.add_node("a", NodeKind::kController, {0, 0});
  const NodeId b = t.add_node("b", NodeKind::kSwitch, {0, 1});
  const NodeId c = t.add_node("c", NodeKind::kSwitch, {1, 0});
  const NodeId d = t.add_node("d", NodeKind::kSwitch, {1, 1});
  t.add_link(a, b, 1.0);
  t.add_link(a, c, 10.0);
  t.add_link(b, d, 1.0);
  t.add_link(c, d, 1.0);
  return t;
}

TEST(Geo, KnownDistances) {
  // New York <-> Los Angeles is roughly 3940 km.
  const GeoPoint nyc{40.71, -74.01};
  const GeoPoint la{34.05, -118.24};
  EXPECT_NEAR(great_circle_km(nyc, la), 3940.0, 50.0);
  EXPECT_DOUBLE_EQ(great_circle_km(nyc, nyc), 0.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(great_circle_km(nyc, la), great_circle_km(la, nyc));
}

TEST(Topology, AddAndQueryNodes) {
  Topology t;
  const NodeId a = t.add_node("ctl", NodeKind::kController, {1, 2});
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.node(a).name, "ctl");
  EXPECT_EQ(t.node(a).kind, NodeKind::kController);
  EXPECT_EQ(t.find_by_name("ctl"), a);
  EXPECT_FALSE(t.find_by_name("nope").has_value());
  EXPECT_THROW((void)t.node(NodeId{5}), std::out_of_range);
}

TEST(Topology, NodesOfKind) {
  const Topology t = diamond();
  EXPECT_EQ(t.nodes_of_kind(NodeKind::kController).size(), 1u);
  EXPECT_EQ(t.nodes_of_kind(NodeKind::kSwitch).size(), 3u);
  EXPECT_TRUE(t.nodes_of_kind(NodeKind::kHost).empty());
}

TEST(Topology, RejectsBadLinks) {
  Topology t;
  const NodeId a = t.add_node("a", NodeKind::kSwitch, {0, 0});
  EXPECT_THROW(t.add_link(a, a), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, NodeId{3}), std::out_of_range);
  const NodeId b = t.add_node("b", NodeKind::kSwitch, {0, 1});
  EXPECT_THROW(t.add_link(a, b, -1.0), std::invalid_argument);
}

TEST(Topology, ShortestDistanceAvoidsLongEdge) {
  const Topology t = diamond();
  const NodeId a{0};
  const NodeId c{2};
  // a->c direct is 10; a->b->d->c is 3.
  EXPECT_DOUBLE_EQ(t.distance_km(a, c), 3.0);
}

TEST(Topology, ShortestPathNodeSequence) {
  const Topology t = diamond();
  const auto path = t.shortest_path(NodeId{0}, NodeId{2});
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), NodeId{0});
  EXPECT_EQ(path[1], NodeId{1});
  EXPECT_EQ(path[2], NodeId{3});
  EXPECT_EQ(path.back(), NodeId{2});
}

TEST(Topology, PathToSelf) {
  const Topology t = diamond();
  EXPECT_DOUBLE_EQ(t.distance_km(NodeId{0}, NodeId{0}), 0.0);
  EXPECT_EQ(t.shortest_path(NodeId{0}, NodeId{0}), std::vector<NodeId>{NodeId{0}});
}

TEST(Topology, UnreachableIsInfinity) {
  Topology t;
  const NodeId a = t.add_node("a", NodeKind::kSwitch, {0, 0});
  const NodeId b = t.add_node("b", NodeKind::kSwitch, {5, 5});
  EXPECT_EQ(t.distance_km(a, b), Topology::kUnreachable);
  EXPECT_TRUE(t.shortest_path(a, b).empty());
  EXPECT_FALSE(t.connected());
}

TEST(Topology, CacheInvalidatedByMutation) {
  Topology t;
  const NodeId a = t.add_node("a", NodeKind::kSwitch, {0, 0});
  const NodeId b = t.add_node("b", NodeKind::kSwitch, {0, 1});
  t.add_link(a, b, 7.0);
  EXPECT_DOUBLE_EQ(t.distance_km(a, b), 7.0);
  t.add_link(a, b, 2.0);  // parallel shorter link
  EXPECT_DOUBLE_EQ(t.distance_km(a, b), 2.0);
}

TEST(Topology, DistanceIsSymmetricOnUndirectedGraph) {
  const Topology t = internet2();
  const NodeId x{3};
  const NodeId y{40};
  EXPECT_DOUBLE_EQ(t.distance_km(x, y), t.distance_km(y, x));
}

TEST(Internet2, ShapeMatchesPaper) {
  const Topology t = internet2();
  EXPECT_EQ(t.node_count(), 50u);
  EXPECT_EQ(t.nodes_of_kind(NodeKind::kController).size(), 16u);
  EXPECT_EQ(t.nodes_of_kind(NodeKind::kSwitch).size(), 34u);
  EXPECT_TRUE(t.connected());
}

TEST(Internet2, ControllerCitiesResolve) {
  const Topology t = internet2();
  for (const auto& city : internet2_controller_cities()) {
    const auto id = t.find_by_name(city);
    ASSERT_TRUE(id.has_value()) << city;
    EXPECT_EQ(t.node(*id).kind, NodeKind::kController);
  }
  for (const auto& city : internet2_switch_cities()) {
    const auto id = t.find_by_name(city);
    ASSERT_TRUE(id.has_value()) << city;
    EXPECT_EQ(t.node(*id).kind, NodeKind::kSwitch);
  }
}

TEST(Internet2, CrossCountryDistanceIsPlausible) {
  const Topology t = internet2();
  const auto seattle = t.find_by_name("Seattle");
  const auto miami = t.find_by_name("Miami");
  ASSERT_TRUE(seattle && miami);
  const double d = t.distance_km(*seattle, *miami);
  // Seattle->Miami along the network must exceed the 4,400 km great-circle
  // distance but stay under a 2.5x detour.
  EXPECT_GT(d, 4400.0);
  EXPECT_LT(d, 11000.0);
}

TEST(Internet2, Deterministic) {
  const Topology a = internet2();
  const Topology b = internet2();
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.link_count(), b.link_count());
  EXPECT_DOUBLE_EQ(a.distance_km(NodeId{0}, NodeId{49}), b.distance_km(NodeId{0}, NodeId{49}));
}

class RandomTopologyTest : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(RandomTopologyTest, IsConnectedWithRightCounts) {
  const auto [ctls, sws] = GetParam();
  const Topology t = random_geo_topology(ctls, sws, 1234);
  EXPECT_EQ(t.nodes_of_kind(NodeKind::kController).size(), ctls);
  EXPECT_EQ(t.nodes_of_kind(NodeKind::kSwitch).size(), sws);
  EXPECT_TRUE(t.connected());
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomTopologyTest,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{4, 8},
                                           std::pair<std::size_t, std::size_t>{16, 34},
                                           std::pair<std::size_t, std::size_t>{32, 64},
                                           std::pair<std::size_t, std::size_t>{64, 128}));

TEST(RandomTopology, DeterministicPerSeed) {
  const Topology a = random_geo_topology(8, 16, 42);
  const Topology b = random_geo_topology(8, 16, 42);
  EXPECT_EQ(a.link_count(), b.link_count());
  EXPECT_DOUBLE_EQ(a.distance_km(NodeId{0}, NodeId{10}), b.distance_km(NodeId{0}, NodeId{10}));
  const Topology c = random_geo_topology(8, 16, 43);
  EXPECT_NE(a.distance_km(NodeId{0}, NodeId{10}), c.distance_km(NodeId{0}, NodeId{10}));
}

}  // namespace
}  // namespace curb::net
