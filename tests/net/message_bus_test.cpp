#include "curb/net/message_bus.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "curb/net/link_model.hpp"
#include "curb/net/topology.hpp"
#include "curb/obs/observatory.hpp"
#include "curb/sim/simulator.hpp"

namespace curb::net {
namespace {

using namespace curb::sim::literals;

struct Fixture {
  Fixture() : bus{sim, topo} {}

  Topology make_line() {
    const NodeId a = topo.add_node("a", NodeKind::kController, {0, 0});
    const NodeId b = topo.add_node("b", NodeKind::kSwitch, {0, 0});
    topo.add_link(a, b, 200.0);  // 200 km -> 1 ms propagation at 2e8 m/s
    return topo;
  }

  sim::Simulator sim;
  Topology topo;
  MessageBus<std::string> bus;
};

TEST(LinkModel, PaperConstants) {
  const LinkModel m;
  // 200 km at 2*10^8 m/s = 1 ms.
  EXPECT_EQ(m.propagation_delay(200.0), 1_ms);
  // 12500 bytes = 100000 bits at 100 Mbps = 1 ms.
  EXPECT_EQ(m.transmission_delay(12'500), 1_ms);
  EXPECT_EQ(m.delay(200.0, 12'500), 2_ms);
}

TEST(LinkModel, OverheadAddsOncePerMessage) {
  LinkModel m;
  m.per_message_overhead = 100_us;
  EXPECT_EQ(m.delay(0.0, 0), 100_us);
}

TEST(MessageBus, DeliversWithPropagationDelay) {
  Fixture f;
  f.make_line();
  std::string received;
  sim::SimTime at = sim::SimTime::zero();
  f.bus.attach(NodeId{1}, [&](NodeId from, const std::string& msg) {
    EXPECT_EQ(from, NodeId{0});
    received = msg;
    at = f.sim.now();
  });
  f.bus.send(NodeId{0}, NodeId{1}, "hello", 0, "test");
  f.sim.run();
  EXPECT_EQ(received, "hello");
  EXPECT_EQ(at, 1_ms);
}

TEST(MessageBus, TransmissionDelayScalesWithBytes) {
  Fixture f;
  f.make_line();
  sim::SimTime at = sim::SimTime::zero();
  f.bus.attach(NodeId{1}, [&](NodeId, const std::string&) { at = f.sim.now(); });
  f.bus.send(NodeId{0}, NodeId{1}, "big", 12'500, "test");
  f.sim.run();
  EXPECT_EQ(at, 2_ms);  // 1 ms propagation + 1 ms transmission
}

TEST(MessageBus, SelfSendSkipsPropagation) {
  Fixture f;
  f.make_line();
  sim::SimTime at = 5_ms;
  f.bus.attach(NodeId{0}, [&](NodeId, const std::string&) { at = f.sim.now(); });
  f.bus.send(NodeId{0}, NodeId{0}, "note-to-self", 0, "test");
  f.sim.run();
  EXPECT_EQ(at, sim::SimTime::zero());
}

TEST(MessageBus, MulticastSkipsSender) {
  Fixture f;
  const NodeId a = f.topo.add_node("a", NodeKind::kController, {0, 0});
  const NodeId b = f.topo.add_node("b", NodeKind::kController, {0, 0});
  const NodeId c = f.topo.add_node("c", NodeKind::kController, {0, 0});
  f.topo.add_link(a, b, 1.0);
  f.topo.add_link(b, c, 1.0);
  MessageBus<std::string> bus{f.sim, f.topo};
  int a_got = 0;
  int b_got = 0;
  int c_got = 0;
  bus.attach(a, [&](NodeId, const std::string&) { ++a_got; });
  bus.attach(b, [&](NodeId, const std::string&) { ++b_got; });
  bus.attach(c, [&](NodeId, const std::string&) { ++c_got; });
  bus.multicast(a, {a, b, c}, "ping", 10, "gossip");
  f.sim.run();
  EXPECT_EQ(a_got, 0);
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 1);
}

TEST(MessageBus, InterceptorCanDrop) {
  Fixture f;
  f.make_line();
  int received = 0;
  f.bus.attach(NodeId{1}, [&](NodeId, const std::string&) { ++received; });
  f.bus.set_interceptor([](NodeId, NodeId, const std::string& msg)
                            -> std::optional<sim::SimTime> {
    if (msg == "drop-me") return std::nullopt;
    return sim::SimTime::zero();
  });
  f.bus.send(NodeId{0}, NodeId{1}, "drop-me", 0, "test");
  f.bus.send(NodeId{0}, NodeId{1}, "keep-me", 0, "test");
  f.sim.run();
  EXPECT_EQ(received, 1);
}

TEST(MessageBus, InterceptorCanDelay) {
  Fixture f;
  f.make_line();
  sim::SimTime at = sim::SimTime::zero();
  f.bus.attach(NodeId{1}, [&](NodeId, const std::string&) { at = f.sim.now(); });
  f.bus.set_interceptor(
      [](NodeId, NodeId, const std::string&) -> std::optional<sim::SimTime> {
        return 300_ms;  // lazy-node behaviour from the paper's experiment 3
      });
  f.bus.send(NodeId{0}, NodeId{1}, "slow", 0, "test");
  f.sim.run();
  EXPECT_EQ(at, 301_ms);
}

TEST(MessageBus, CountsMessagesByCategory) {
  Fixture f;
  f.make_line();
  f.bus.attach(NodeId{1}, [](NodeId, const std::string&) {});
  f.bus.send(NodeId{0}, NodeId{1}, "a", 100, "PKT-IN");
  f.bus.send(NodeId{0}, NodeId{1}, "b", 50, "PKT-IN");
  f.bus.send(NodeId{0}, NodeId{1}, "c", 10, "AGREE");
  EXPECT_EQ(f.bus.stats().total_messages(), 3u);
  EXPECT_EQ(f.bus.stats().total_bytes(), 160u);
  EXPECT_EQ(f.bus.stats().messages("PKT-IN"), 2u);
  EXPECT_EQ(f.bus.stats().messages("AGREE"), 1u);
  EXPECT_EQ(f.bus.stats().messages("unknown"), 0u);
  f.bus.stats().reset();
  EXPECT_EQ(f.bus.stats().total_messages(), 0u);
}

TEST(MessageBus, TracksBytesPerCategory) {
  Fixture f;
  f.make_line();
  f.bus.attach(NodeId{1}, [](NodeId, const std::string&) {});
  f.bus.send(NodeId{0}, NodeId{1}, "a", 100, "PKT-IN");
  f.bus.send(NodeId{0}, NodeId{1}, "b", 50, "PKT-IN");
  f.bus.send(NodeId{0}, NodeId{1}, "c", 10, "AGREE");
  EXPECT_EQ(f.bus.stats().bytes("PKT-IN"), 150u);
  EXPECT_EQ(f.bus.stats().bytes("AGREE"), 10u);
  EXPECT_EQ(f.bus.stats().bytes("unknown"), 0u);
  const auto snap = f.bus.stats().snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.at("PKT-IN").first, 2u);
  EXPECT_EQ(snap.at("PKT-IN").second, 150u);
}

TEST(MessageBus, ObservatoryCountsTrafficAndDrops) {
  Fixture f;
  f.make_line();
  // A third, unreachable node to exercise the partition-drop path.
  const NodeId c = f.topo.add_node("c", NodeKind::kController, {9999, 9999});
  obs::Observatory obsy;
  obsy.enable(f.sim);
  f.bus.set_observatory(&obsy);
  f.bus.attach(NodeId{1}, [](NodeId, const std::string&) {});
  f.bus.set_interceptor([](NodeId, NodeId, const std::string& msg)
                            -> std::optional<sim::SimTime> {
    if (msg == "drop-me") return std::nullopt;
    return sim::SimTime::zero();
  });

  f.bus.send(NodeId{0}, NodeId{1}, "hello", 12'500, "PKT-IN");
  f.bus.send(NodeId{0}, NodeId{1}, "drop-me", 8, "PKT-IN");
  f.bus.send(NodeId{0}, c, "unroutable", 8, "PKT-IN");
  f.sim.run();

  auto& reg = obsy.metrics;
  const obs::Labels cat{{"category", "PKT-IN"}};
  EXPECT_EQ(reg.counter("net.messages", cat).value(), 1u);  // delivered only
  EXPECT_EQ(reg.counter("net.bytes", cat).value(), 12'500u);
  EXPECT_EQ(reg.counter("net.dropped",
                        {{"category", "PKT-IN"}, {"reason", "interceptor"}})
                .value(),
            1u);
  EXPECT_EQ(reg.counter("net.dropped",
                        {{"category", "PKT-IN"}, {"reason", "partition"}})
                .value(),
            1u);
  // 200 km propagation (1 ms) + 12500 bytes transmission (1 ms) = 2 ms.
  obs::Histogram& delay = reg.histogram("net.delay_us", cat);
  EXPECT_EQ(delay.count(), 1u);
  EXPECT_DOUBLE_EQ(delay.min(), 2000.0);
}

TEST(MessageBus, SendObserverFiresOncePerMulticastDestination) {
  sim::Simulator sim;
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kController, {0, 0});
  const NodeId b = topo.add_node("b", NodeKind::kController, {0, 0});
  const NodeId c = topo.add_node("c", NodeKind::kController, {0, 0});
  topo.add_link(a, b, 10.0);
  topo.add_link(a, c, 10.0);
  MessageBus<std::string> bus{sim, topo};

  std::vector<std::pair<std::uint32_t, std::uint32_t>> seen;
  bus.set_send_observer([&](const MessageBus<std::string>::SendRecord& rec,
                            const std::string& payload, const std::string& category) {
    EXPECT_EQ(payload, "ping");
    EXPECT_EQ(category, "gossip");
    EXPECT_EQ(rec.bytes, 10u);
    EXPECT_FALSE(rec.dropped);
    seen.emplace_back(rec.from.value, rec.to.value);
  });
  // One observation per multicast destination (self skipped), exactly
  // mirroring MessageStats accounting.
  bus.multicast(a, {a, b, c}, "ping", 10, "gossip");
  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
  EXPECT_EQ(seen[1], (std::pair<std::uint32_t, std::uint32_t>{0, 2}));
  EXPECT_EQ(bus.stats().total_messages(), seen.size());
}

TEST(MessageBus, SendObserverConservationWithDropsAndDups) {
  Fixture f;
  f.make_line();
  // A third, unreachable node to exercise the partition-drop path.
  const NodeId c = f.topo.add_node("c", NodeKind::kController, {0, 0});

  f.bus.set_fault_hook([](NodeId, NodeId, const std::string& payload,
                          const std::string&) {
    BusFaultAction<std::string> action;
    if (payload == "dup-me") action.duplicates = {1_ms, 2_ms};
    if (payload == "drop-me") action.drop = true;
    return action;
  });

  std::uint64_t observed = 0, dups = 0, drops = 0;
  f.bus.set_send_observer([&](const MessageBus<std::string>::SendRecord& rec,
                              const std::string&, const std::string&) {
    ++observed;
    dups += rec.duplicates;
    if (rec.dropped) ++drops;
  });
  f.bus.attach(NodeId{1}, [](NodeId, const std::string&) {});

  f.bus.send(NodeId{0}, NodeId{1}, "dup-me", 8, "AGREE");
  f.bus.send(NodeId{0}, NodeId{1}, "drop-me", 8, "AGREE");
  f.bus.send(NodeId{0}, c, "unroutable", 8, "AGREE");  // partition drop
  f.sim.run();

  // Conservation: the observer saw exactly what MessageStats accounted —
  // drops included, fault duplicates reported but never re-counted.
  EXPECT_EQ(observed, f.bus.stats().total_messages());
  EXPECT_EQ(observed, 3u);
  EXPECT_EQ(dups, 2u);
  EXPECT_EQ(drops, 2u);
}

TEST(MessageBus, UnattachedRecipientIsIgnored) {
  Fixture f;
  f.make_line();
  f.bus.send(NodeId{0}, NodeId{1}, "void", 0, "test");
  EXPECT_NO_THROW(f.sim.run());
}

TEST(MessageBus, AttachRejectsBadNode) {
  Fixture f;
  f.make_line();
  EXPECT_THROW(f.bus.attach(NodeId{99}, [](NodeId, const std::string&) {}),
               std::out_of_range);
}

}  // namespace
}  // namespace curb::net
