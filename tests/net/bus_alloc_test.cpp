// Allocation-count regression tests for the shared-payload bus fast path.
//
// This binary runs under CURB_MEM_ACCOUNT=1 (see tests/CMakeLists.txt): the
// curb::obs::res accountant interposes operator new/delete process-wide, so
// obs::res::snapshot().total.allocs counts every heap allocation. Each test
// warms the bus (stats map nodes, simulator queue capacity, event-block
// pool), then measures the allocation delta of the operation under test.
// No gtest macros run inside a measured region — assertions come after.

#include "curb/net/message_bus.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "curb/net/topology.hpp"
#include "curb/obs/res/account.hpp"
#include "curb/sim/simulator.hpp"

namespace curb::net {
namespace {

using namespace curb::sim::literals;

struct Fixture {
  Fixture() : bus{sim, topo} {
    a = topo.add_node("a", NodeKind::kController, {0, 0});
    b = topo.add_node("b", NodeKind::kController, {0, 0});
    c = topo.add_node("c", NodeKind::kController, {0, 0});
    d = topo.add_node("d", NodeKind::kController, {0, 0});
    e = topo.add_node("e", NodeKind::kController, {0, 0});
    f = topo.add_node("f", NodeKind::kController, {0, 0});
    g = topo.add_node("g", NodeKind::kController, {0, 0});
    topo.add_link(a, b, 1.0);
    topo.add_link(b, c, 1.0);
    topo.add_link(c, d, 1.0);
    topo.add_link(d, e, 1.0);
    topo.add_link(e, f, 1.0);
    topo.add_link(f, g, 1.0);
    for (const NodeId n : {a, b, c, d, e, f, g}) {
      bus.attach(n, [this](NodeId, const std::string&) { ++delivered; });
    }
  }

  /// Populate every lazily-built structure the measured path touches:
  /// the per-category stats map node, the per-destination pending-inbox
  /// vector, the simulator's queue capacity, and the event-block pool.
  void warm(const std::string& category) {
    for (int i = 0; i < 32; ++i) {
      bus.send(a, g, "warm", 16, category);
      bus.multicast(a, {a, b, c, d, e, f, g}, "warm", 16, category);
    }
    sim.run();
  }

  [[nodiscard]] static std::uint64_t allocs() {
    return obs::res::snapshot().total.allocs;
  }

  sim::Simulator sim;
  Topology topo;
  MessageBus<std::string> bus;
  NodeId a, b, c, d, e, f, g;
  int delivered = 0;
};

#define SKIP_UNLESS_ACCOUNTING()                                         \
  if (!obs::res::enabled()) {                                            \
    GTEST_SKIP() << "CURB_MEM_ACCOUNT latch is off; run via ctest which" \
                    " sets it for this binary";                          \
  }

// Tentpole/satellite 1: one warmed send costs exactly one allocation —
// the shared immutable payload buffer. The delivery lambda captures a
// refcounted handle inline in the event slot; no payload copy, no event
// heap block, no stats-map node.
TEST(BusAlloc, WarmedSendAllocatesExactlyOnePayloadBuffer) {
  SKIP_UNLESS_ACCOUNTING();
  Fixture fx;
  fx.warm("alloc-test");

  const std::uint64_t before = Fixture::allocs();
  fx.bus.send(fx.a, fx.g, "ping", 16, "alloc-test");
  const std::uint64_t after_one = Fixture::allocs();
  fx.bus.send(fx.a, fx.g, "pong", 16, "alloc-test");
  const std::uint64_t after_two = Fixture::allocs();

  EXPECT_EQ(after_one - before, 1u);
  EXPECT_EQ(after_two - after_one, 1u);
  fx.sim.run();
  EXPECT_GT(fx.delivered, 0);
}

// Satellite 2: a multicast buffers the payload once, shared across every
// destination. The allocation delta is one buffer regardless of fan-out.
TEST(BusAlloc, MulticastAllocatesOneBufferRegardlessOfFanout) {
  SKIP_UNLESS_ACCOUNTING();
  Fixture fx;
  fx.warm("alloc-test");
  const std::vector<NodeId> three{fx.a, fx.b, fx.c};
  const std::vector<NodeId> six{fx.a, fx.b, fx.c, fx.d, fx.e, fx.f, fx.g};

  const std::uint64_t before = Fixture::allocs();
  fx.bus.multicast(fx.a, three, "ping", 16, "alloc-test");
  const std::uint64_t after_three = Fixture::allocs();
  fx.bus.multicast(fx.a, six, "ping", 16, "alloc-test");
  const std::uint64_t after_six = Fixture::allocs();

  EXPECT_EQ(after_three - before, 1u);
  EXPECT_EQ(after_six - after_three, 1u);
  fx.sim.run();
}

// Satellite 1: fault-injected duplicate deliveries share the same buffer as
// the original. The per-send delta with two duplicates is independent of
// payload size: a large payload is moved into the shared buffer, never
// copied per duplicate. (The one extra allocation vs. a plain send is the
// BusFaultAction::duplicates vector built by the hook itself.)
TEST(BusAlloc, DuplicateDeliveryDeltaIndependentOfPayloadSize) {
  SKIP_UNLESS_ACCOUNTING();
  Fixture fx;
  fx.bus.set_fault_hook([](NodeId, NodeId, const std::string&,
                           const std::string&) {
    BusFaultAction<std::string> action;
    action.duplicates = {1_ms, 2_ms};
    return action;
  });
  fx.warm("alloc-test");
  fx.delivered = 0;

  // Pre-build payloads outside the measured region; send() moves them.
  std::string small = "ping";
  std::string large(1024, 'x');
  const std::uint64_t large_capacity_hint = large.capacity();

  const std::uint64_t before = Fixture::allocs();
  fx.bus.send(fx.a, fx.g, std::move(small), 16, "alloc-test");
  const std::uint64_t after_small = Fixture::allocs();
  fx.bus.send(fx.a, fx.g, std::move(large), 1024, "alloc-test");
  const std::uint64_t after_large = Fixture::allocs();

  const std::uint64_t small_delta = after_small - before;
  const std::uint64_t large_delta = after_large - after_small;
  EXPECT_EQ(small_delta, large_delta)
      << "per-send allocation cost must not scale with payload size "
         "(1 KiB payload, capacity " << large_capacity_hint << ")";
  fx.sim.run();
  EXPECT_EQ(fx.delivered, 6);  // 2 sends x (1 original + 2 duplicates)
}

// Tentpole (b)+(a): COW isolation under corruption. Not an allocation test,
// but it lives here because it exercises the same shared-buffer machinery:
// a corrupt fault on one destination of a multicast must rebind only that
// destination's handle, leaving the other destinations' shared bytes
// pristine.
TEST(BusAlloc, CorruptFaultLeavesOtherMulticastDestinationsPristine) {
  Fixture fx;
  std::string got_b;
  std::string got_c;
  fx.bus.attach(fx.b, [&](NodeId, const std::string& msg) { got_b = msg; });
  fx.bus.attach(fx.c, [&](NodeId, const std::string& msg) { got_c = msg; });
  fx.bus.set_fault_hook([&](NodeId, NodeId to, const std::string&,
                            const std::string&) {
    BusFaultAction<std::string> action;
    if (to == fx.b) {
      action.corrupt = [](std::string& payload) { payload = "corrupted"; };
    }
    return action;
  });
  fx.bus.multicast(fx.a, {fx.b, fx.c}, "pristine", 16, "cow-test");
  fx.sim.run();
  EXPECT_EQ(got_b, "corrupted");
  EXPECT_EQ(got_c, "pristine");
}

// The shared buffer really is shared: every destination's handler observes
// the same payload object address.
TEST(BusAlloc, MulticastDestinationsObserveSameBufferAddress) {
  Fixture fx;
  std::vector<const std::string*> seen;
  for (const NodeId n : {fx.b, fx.c, fx.d}) {
    fx.bus.attach(n, [&](NodeId, const std::string& msg) { seen.push_back(&msg); });
  }
  fx.bus.multicast(fx.a, {fx.b, fx.c, fx.d}, "shared-bytes", 16, "cow-test");
  fx.sim.run();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], seen[1]);
  EXPECT_EQ(seen[1], seen[2]);
}

}  // namespace
}  // namespace curb::net
