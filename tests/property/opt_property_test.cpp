// Property tests for the optimization stack: on randomly generated CAP
// instances, the exact solver's output must satisfy every constraint, never
// beat the LP bound, and never lose to the greedy heuristic.

#include <gtest/gtest.h>

#include <cmath>

#include "curb/opt/cap.hpp"
#include "curb/opt/lp.hpp"
#include "curb/sim/rng.hpp"

namespace curb::opt {
namespace {

CapInstance random_instance(std::uint64_t seed) {
  sim::Rng rng{seed};
  const std::size_t switches = 4 + rng.next_below(10);
  const std::size_t controllers = 6 + rng.next_below(8);
  const int group = 2 + static_cast<int>(rng.next_below(2));  // 2..3
  // Capacity with headroom so most instances are feasible.
  const double capacity =
      2.0 + std::ceil(static_cast<double>(switches * static_cast<std::size_t>(group)) /
                      static_cast<double>(controllers));
  CapInstance inst = CapInstance::uniform(switches, controllers, group, 1.0, capacity);
  for (auto& row : inst.cs_delay) {
    for (auto& d : row) d = rng.next_double_in(1.0, 20.0);
  }
  if (rng.next_bool(0.5)) inst.max_cs_delay = rng.next_double_in(8.0, 20.0);
  return inst;
}

class CapRandomInstance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CapRandomInstance, SolutionSatisfiesAllConstraints) {
  const CapInstance inst = random_instance(GetParam());
  const CapResult r = solve_cap(inst);
  if (!r.feasible) GTEST_SKIP() << "instance infeasible";
  EXPECT_TRUE(r.assignment.feasible_for(inst));
}

TEST_P(CapRandomInstance, GreedyNeverBeatsExact) {
  const CapInstance inst = random_instance(GetParam());
  const CapResult exact = solve_cap(inst);
  const auto greedy = greedy_assign(inst);
  if (!exact.feasible || !greedy) GTEST_SKIP();
  EXPECT_LE(exact.assignment.controllers_used(), greedy->controllers_used());
}

TEST_P(CapRandomInstance, ExactMatchesObjective) {
  const CapInstance inst = random_instance(GetParam());
  const CapResult r = solve_cap(inst);
  if (!r.feasible) GTEST_SKIP();
  EXPECT_NEAR(r.objective, static_cast<double>(r.assignment.controllers_used()), 1e-6);
}

TEST_P(CapRandomInstance, LcrChangesNoMoreLinksThanTcr) {
  const CapInstance base_inst = random_instance(GetParam());
  const CapResult base = solve_cap(base_inst);
  if (!base.feasible) GTEST_SKIP();
  CapInstance inst = base_inst;
  // Remove the least-loaded used controller.
  std::size_t victim = inst.num_controllers;
  std::size_t fewest = SIZE_MAX;
  for (std::size_t j = 0; j < inst.num_controllers; ++j) {
    const auto count = base.assignment.switches_of(j).size();
    if (count > 0 && count < fewest) {
      fewest = count;
      victim = j;
    }
  }
  ASSERT_LT(victim, inst.num_controllers);
  inst.byzantine[victim] = true;
  const CapResult tcr = solve_cap(inst, CapObjective::kTrivial, &base.assignment);
  const CapResult lcr = solve_cap(inst, CapObjective::kLeastMovement, &base.assignment);
  if (!tcr.feasible || !lcr.feasible) GTEST_SKIP();
  // The theorem LCR actually guarantees: it minimizes usage + changed
  // links, so its composite value never exceeds TCR's. (Equal controller
  // usage — the paper's Fig. 7 observation — is empirical, not implied: LCR
  // may legally trade one extra controller for many fewer moved links.)
  const auto changed_links = [&](const Assignment& next) {
    std::size_t changed = 0;
    for (std::size_t i = 0; i < next.num_switches(); ++i) {
      for (std::size_t j = 0; j < next.num_controllers(); ++j) {
        if (next.assigned(i, j) != base.assignment.assigned(i, j)) ++changed;
      }
    }
    return changed;
  };
  const double tcr_composite = static_cast<double>(tcr.assignment.controllers_used() +
                                                   changed_links(tcr.assignment));
  const double lcr_composite = static_cast<double>(lcr.assignment.controllers_used() +
                                                   changed_links(lcr.assignment));
  EXPECT_LE(lcr_composite, tcr_composite + 1e-9);
  EXPECT_NEAR(lcr.objective, lcr_composite, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CapRandomInstance,
                         ::testing::Range<std::uint64_t>(1, 21));

class LpRandomCover : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpRandomCover, MilpNeverBeatsLpBound) {
  sim::Rng rng{GetParam()};
  const int sets = 6 + static_cast<int>(rng.next_below(8));
  const int elements = 2 * sets;
  LpProblem p;
  std::vector<int> vars;
  for (int j = 0; j < sets; ++j) {
    vars.push_back(p.add_variable(1.0 + static_cast<double>(rng.next_below(3)), 0.0, 1.0));
  }
  bool coverable = true;
  for (int e = 0; e < elements; ++e) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < sets; ++j) {
      if (rng.next_bool(0.4)) terms.push_back({vars[static_cast<std::size_t>(j)], 1.0});
    }
    if (terms.empty()) {
      coverable = false;
      break;
    }
    p.add_constraint(std::move(terms), LpProblem::Sense::kGe, 1.0);
  }
  if (!coverable) GTEST_SKIP();
  const LpSolution relax = solve_lp(p);
  ASSERT_EQ(relax.status, LpStatus::kOptimal);
  MilpSolver solver{p};
  solver.set_binary(vars);
  const MilpSolution integral = solver.solve();
  ASSERT_EQ(integral.status, LpStatus::kOptimal);
  EXPECT_GE(integral.objective, relax.objective - 1e-6);
  // And the integral solution is genuinely integral.
  for (const int v : vars) {
    const double x = integral.values[static_cast<std::size_t>(v)];
    EXPECT_TRUE(x == 0.0 || x == 1.0) << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomCover, ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace curb::opt
