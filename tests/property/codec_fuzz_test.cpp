// Robustness fuzzing for every wire codec: random bytes and truncations of
// valid encodings must never crash, corrupt memory, or be silently
// accepted as valid protocol objects — they must either decode to a value
// or throw. (A byzantine peer controls these bytes.)

#include <gtest/gtest.h>

#include <vector>

#include "curb/chain/block.hpp"
#include "curb/chain/transaction.hpp"
#include "curb/core/assignment_state.hpp"
#include "curb/core/codec.hpp"
#include "curb/sdn/flow.hpp"
#include "curb/sdn/policy.hpp"
#include "curb/sim/rng.hpp"

namespace curb {
namespace {

std::vector<std::uint8_t> random_bytes(sim::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.next_below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

template <typename Decode>
void expect_no_crash(const std::vector<std::uint8_t>& bytes, Decode decode) {
  try {
    decode(bytes);
  } catch (const std::exception&) {
    // Throwing a typed exception is the correct rejection path.
  }
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomBytesNeverCrashAnyDecoder) {
  sim::Rng rng{GetParam()};
  for (int round = 0; round < 200; ++round) {
    const auto bytes = random_bytes(rng, 160);
    expect_no_crash(bytes, [](const auto& b) { (void)chain::Transaction::deserialize(b); });
    expect_no_crash(bytes, [](const auto& b) { (void)chain::Block::deserialize(b); });
    expect_no_crash(bytes, [](const auto& b) { (void)chain::BlockHeader::deserialize(b); });
    expect_no_crash(bytes, [](const auto& b) { (void)sdn::FlowEntry::deserialize(b); });
    expect_no_crash(bytes,
                    [](const auto& b) { (void)sdn::FlowEntry::deserialize_list(b); });
    expect_no_crash(bytes, [](const auto& b) { (void)sdn::PolicyRule::deserialize(b); });
    expect_no_crash(bytes, [](const auto& b) { (void)sdn::PolicyTable::deserialize(b); });
    expect_no_crash(bytes,
                    [](const auto& b) { (void)core::AssignmentState::deserialize(b); });
    expect_no_crash(bytes, [](const auto& b) { (void)core::deserialize_tx_list(b); });
    expect_no_crash(bytes, [](const auto& b) { (void)core::deserialize_packet(b); });
    expect_no_crash(bytes, [](const auto& b) { (void)core::deserialize_id_list(b); });
  }
}

TEST_P(CodecFuzz, TruncationsOfValidEncodingsAreRejectedNotCrashed) {
  sim::Rng rng{GetParam()};
  chain::Transaction tx{chain::RequestType::kPacketIn, 3, 7, 42, {0x01, 0x02, 0x03}};
  const chain::Block block =
      chain::Block::create(1, crypto::Sha256::digest("prev"), {tx}, 55, 2);
  const std::vector<std::vector<std::uint8_t>> valid = {
      tx.serialize(),
      block.serialize(),
      sdn::FlowEntry{}.serialize(),
      sdn::PolicyRule{}.serialize(),
      core::serialize_packet({1, 2, 3, 4}),
      core::serialize_id_list({9, 8, 7}),
  };
  for (const auto& bytes : valid) {
    for (int round = 0; round < 20; ++round) {
      auto cut = bytes;
      cut.resize(rng.next_below(bytes.size()));
      expect_no_crash(cut, [](const auto& b) { (void)chain::Transaction::deserialize(b); });
      expect_no_crash(cut, [](const auto& b) { (void)chain::Block::deserialize(b); });
      expect_no_crash(cut, [](const auto& b) { (void)sdn::FlowEntry::deserialize(b); });
      expect_no_crash(cut, [](const auto& b) { (void)sdn::PolicyRule::deserialize(b); });
      expect_no_crash(cut, [](const auto& b) { (void)core::deserialize_packet(b); });
      expect_no_crash(cut, [](const auto& b) { (void)core::deserialize_id_list(b); });
    }
  }
}

TEST_P(CodecFuzz, BitFlipsOnBlocksAreDetectedOrRejected) {
  sim::Rng rng{GetParam()};
  chain::Transaction tx{chain::RequestType::kReassign, 1, 2, 3, {0xde, 0xad}};
  const chain::Block block = chain::Block::create(4, crypto::Sha256::digest("p"), {tx}, 9, 1);
  const auto bytes = block.serialize();
  for (int round = 0; round < 100; ++round) {
    auto mutated = bytes;
    mutated[rng.next_below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      const chain::Block decoded = chain::Block::deserialize(mutated);
      // If it decodes, a body mutation must be caught by the Merkle root
      // and a header mutation must change the hash.
      if (decoded.well_formed() && decoded == block) continue;  // flip was a no-op? No:
      EXPECT_TRUE(!decoded.well_formed() || decoded.hash() != block.hash() ||
                  decoded == block);
    } catch (const std::exception&) {
      // Rejection is fine.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace curb
