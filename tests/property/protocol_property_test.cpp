// Property tests across the consensus and crypto layers: PBFT safety and
// liveness over group sizes and fault loads; ECDSA over random keys and
// messages; end-to-end Curb invariants over random topologies.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "curb/bft/group.hpp"
#include "curb/core/simulation.hpp"
#include "curb/crypto/secp256k1.hpp"
#include "curb/sim/rng.hpp"

namespace curb {
namespace {

using namespace curb::sim::literals;

// --- Consensus over (engine, group size) -------------------------------------

using EngineAndSize = std::tuple<bft::ConsensusEngine, std::size_t>;

class ConsensusGroupSize : public ::testing::TestWithParam<EngineAndSize> {
 protected:
  [[nodiscard]] bft::PbftGroup::Options options() const {
    bft::PbftGroup::Options opts;
    opts.engine = std::get<0>(GetParam());
    opts.group_size = std::get<1>(GetParam());
    return opts;
  }
};

TEST_P(ConsensusGroupSize, AllHonestAgreeOnOrder) {
  const std::size_t n = std::get<1>(GetParam());
  sim::Simulator simulator;
  bft::PbftGroup group{simulator, options()};
  for (int i = 0; i < 4; ++i) {
    group.replica(0).propose({static_cast<std::uint8_t>(i)});
  }
  simulator.run();
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(group.delivered(i).size(), 4u) << "replica " << i;
    EXPECT_EQ(group.delivered(i), group.delivered(0));
  }
}

TEST_P(ConsensusGroupSize, ToleratesMaxFaults) {
  const std::size_t n = std::get<1>(GetParam());
  const std::size_t f = (n - 1) / 3;
  sim::Simulator simulator;
  bft::PbftGroup group{simulator, options()};
  // Silence the LAST f replicas (never the leader).
  for (std::size_t i = 0; i < f; ++i) {
    group.replica(static_cast<std::uint32_t>(n - 1 - i)).set_behavior(bft::Behavior::kSilent);
  }
  group.replica(0).propose({0x42});
  simulator.run_until(400_ms);
  EXPECT_GE(group.replicas_delivered_at_least(1), n - f);
}

TEST_P(ConsensusGroupSize, MessageCountDependsOnlyOnGroupSize) {
  auto count = [this] {
    sim::Simulator simulator;
    bft::PbftGroup group{simulator, options()};
    group.replica(0).propose({0x01});
    simulator.run_until(400_ms);
    return group.messages_sent();
  };
  EXPECT_EQ(count(), count());
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSizes, ConsensusGroupSize,
    ::testing::Combine(::testing::Values(bft::ConsensusEngine::kPbft,
                                         bft::ConsensusEngine::kHotstuff),
                       ::testing::Values<std::size_t>(4, 5, 7, 10, 13)),
    [](const auto& info) {
      return std::string{bft::to_string(std::get<0>(info.param))} + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// --- ECDSA over random keys --------------------------------------------------

class EcdsaRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EcdsaRandom, SignVerifyAndTamperReject) {
  sim::Rng rng{GetParam()};
  const auto key =
      crypto::KeyPair::from_seed("prop-key-" + std::to_string(rng.next_u64()));
  const auto digest =
      crypto::Sha256::digest("prop-msg-" + std::to_string(rng.next_u64()));
  const auto sig = key.sign(digest);
  EXPECT_TRUE(crypto::verify(key.public_key(), digest, sig));

  auto tampered = digest;
  tampered[rng.next_below(32)] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
  EXPECT_FALSE(crypto::verify(key.public_key(), tampered, sig));

  const auto bytes = key.public_key().to_bytes();
  const auto restored =
      crypto::PublicKey::from_bytes(std::span<const std::uint8_t, 33>{bytes});
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(crypto::verify(*restored, digest, sig));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdsaRandom, ::testing::Range<std::uint64_t>(1, 13));

// --- End-to-end Curb invariants over random topologies -----------------------

class CurbRandomTopology : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CurbRandomTopology, RoundInvariants) {
  core::CurbOptions opts;
  opts.seed = GetParam();
  opts.controller_capacity = 10.0;
  opts.op_time_mode = core::OpTimeMode::kFixed;
  core::CurbSimulation sim{net::random_geo_topology(8, 12, GetParam()), opts};

  const auto m = sim.run_packet_in_round();
  // Liveness: every request served in a fault-free round.
  EXPECT_EQ(m.accepted, m.issued);
  // Safety: all chains identical, all served requests on-chain.
  EXPECT_TRUE(sim.chains_consistent());
  const auto& chain = sim.network().controller(0).blockchain();
  EXPECT_GE(chain.total_transactions(), m.accepted);
  // Every block in every replica validates.
  for (std::uint64_t h = 0; h <= chain.height(); ++h) {
    EXPECT_TRUE(chain.at(h).well_formed());
    if (h > 0) {
      EXPECT_EQ(chain.at(h).header().prev_hash, chain.at(h - 1).hash());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CurbRandomTopology, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace curb
