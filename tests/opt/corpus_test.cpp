// Golden corpus: committed CAP instances with exact optima proven by
// `curb-capgen --prove` at generation time. Every backend re-solves each of
// them on every run; the exact backends must reproduce the recorded optimum
// bit-for-bit, and the heuristic must stay feasible within its gap bound.
// Regenerate an instance with
//   curb-capgen --switches N --controllers M --seed S --prove --out FILE

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "curb/opt/instance_io.hpp"
#include "curb/opt/solver.hpp"

#ifndef CURB_OPT_CORPUS_DIR
#error "CURB_OPT_CORPUS_DIR must point at tests/opt/corpus"
#endif

namespace curb::opt {
namespace {

[[nodiscard]] std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator{CURB_OPT_CORPUS_DIR}) {
    if (entry.path().extension() == ".json") files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(SolverCorpus, CorpusIsPresent) {
  // An empty corpus would silently skip every check below.
  EXPECT_GE(corpus_files().size(), 10u);
}

TEST(SolverCorpus, ExactBackendsReproduceKnownOptima) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    const StoredInstance stored = load_instance(path);
    ASSERT_TRUE(stored.feasible) << "corpus entries must record feasibility";

    for (const CapSolverBackend backend :
         {CapSolverBackend::kDense, CapSolverBackend::kSparse}) {
      SCOPED_TRACE(to_string(backend));
      const CapResult r = solve_cap_with(backend, stored.instance);
      EXPECT_EQ(r.feasible, *stored.feasible);
      if (r.feasible) {
        EXPECT_TRUE(r.assignment.feasible_for(stored.instance));
        if (stored.tcr_optimum) {
          EXPECT_DOUBLE_EQ(r.objective, *stored.tcr_optimum);
        }
      }
    }
  }
}

TEST(SolverCorpus, HeuristicStaysFeasibleAndBounded) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    const StoredInstance stored = load_instance(path);
    const CapResult r = solve_cap_with(CapSolverBackend::kHeuristic, stored.instance);
    if (!stored.feasible.value_or(true)) {
      EXPECT_FALSE(r.feasible) << "heuristic claimed an infeasible instance";
      continue;
    }
    if (r.feasible) {
      EXPECT_TRUE(r.assignment.feasible_for(stored.instance));
      if (stored.tcr_optimum) {
        EXPECT_GE(r.objective, *stored.tcr_optimum - 1e-9);
        EXPECT_LE(r.objective, 2.0 * *stored.tcr_optimum + 2.0);
      }
    }
  }
}

}  // namespace
}  // namespace curb::opt
