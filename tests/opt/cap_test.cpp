#include "curb/opt/cap.hpp"

#include <gtest/gtest.h>

namespace curb::opt {
namespace {

/// 4 switches, 6 controllers, everything eligible, group size 2.
CapInstance small_instance() {
  CapInstance inst = CapInstance::uniform(4, 6, 2, 1.0, 100.0);
  // Mild delay structure: controller j is "close" to switch i when i%3==j%3.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      inst.cs_delay[i][j] = (i % 3 == j % 3) ? 1.0 : 5.0;
    }
  }
  return inst;
}

TEST(Assignment, BasicAccessors) {
  Assignment a{2, 3};
  EXPECT_EQ(a.num_switches(), 2u);
  EXPECT_EQ(a.num_controllers(), 3u);
  a.set(0, 1, true);
  a.set(1, 1, true);
  a.set(1, 2, true);
  EXPECT_TRUE(a.assigned(0, 1));
  EXPECT_EQ(a.group_of(1), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(a.switches_of(1), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(a.controllers_used(), 2u);
  EXPECT_EQ(a.total_links(), 3u);
  EXPECT_TRUE(a.controller_used(2));
  EXPECT_FALSE(a.controller_used(0));
}

TEST(Assignment, PdlMatchesPaperExample) {
  // Paper: 30 links; remove 2, add 3 -> PDL = 5/33 ~= 15%.
  Assignment before{6, 10};
  std::size_t placed = 0;
  for (std::size_t i = 0; i < 6 && placed < 30; ++i) {
    for (std::size_t j = 0; j < 10 && placed < 30; ++j) {
      if ((i + j) % 2 == 0) {
        before.set(i, j, true);
        ++placed;
      }
    }
  }
  ASSERT_EQ(before.total_links(), 30u);
  Assignment after = before;
  // Remove two links.
  const auto g0 = after.group_of(0);
  after.set(0, g0[0], false);
  after.set(0, g0[1], false);
  // Add three links that were absent.
  std::size_t added = 0;
  for (std::size_t i = 0; i < 6 && added < 3; ++i) {
    for (std::size_t j = 0; j < 10 && added < 3; ++j) {
      if (!before.assigned(i, j)) {
        after.set(i, j, true);
        ++added;
      }
    }
  }
  EXPECT_NEAR(Assignment::pdl(before, after), 5.0 / 33.0, 1e-9);
}

TEST(Assignment, PdlZeroWhenUnchanged) {
  Assignment a{2, 2};
  a.set(0, 0, true);
  EXPECT_DOUBLE_EQ(Assignment::pdl(a, a), 0.0);
}

TEST(Assignment, PdlDimensionMismatchThrows) {
  EXPECT_THROW((void)Assignment::pdl(Assignment{1, 2}, Assignment{2, 2}),
               std::invalid_argument);
}

TEST(CapInstance, ValidateCatchesBadShapes) {
  CapInstance inst = CapInstance::uniform(2, 3, 1, 1.0, 10.0);
  EXPECT_NO_THROW(inst.validate());
  inst.switch_load.pop_back();
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Greedy, CoversAllSwitches) {
  const CapInstance inst = small_instance();
  const auto a = greedy_assign(inst);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->feasible_for(inst));
}

TEST(Greedy, RespectsCapacity) {
  CapInstance inst = CapInstance::uniform(4, 4, 1, 1.0, 2.0);
  const auto a = greedy_assign(inst);
  ASSERT_TRUE(a.has_value());
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_LE(a->switches_of(j).size(), 2u);
  }
}

TEST(Greedy, FailsWhenImpossible) {
  // 3 switches need 2 controllers each, but each controller fits one switch
  // and there are only 4 -> needs 6 slots, has 4.
  CapInstance inst = CapInstance::uniform(3, 4, 2, 1.0, 1.0);
  EXPECT_FALSE(greedy_assign(inst).has_value());
}

TEST(SolveCap, OptimalUsesMinimumControllers) {
  // Group size 2, no capacity pressure: two controllers suffice.
  const CapInstance inst = small_instance();
  const CapResult r = solve_cap(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.assignment.feasible_for(inst));
  EXPECT_EQ(r.assignment.controllers_used(), 2u);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
}

TEST(SolveCap, CapacityForcesMoreControllers) {
  // Each controller holds 2 switches; 4 switches x group 2 = 8 slots -> >= 4.
  CapInstance inst = CapInstance::uniform(4, 6, 2, 1.0, 2.0);
  const CapResult r = solve_cap(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.assignment.feasible_for(inst));
  EXPECT_EQ(r.assignment.controllers_used(), 4u);
}

TEST(SolveCap, CsDelayLimitsEligibility) {
  CapInstance inst = small_instance();
  inst.max_cs_delay = 2.0;  // only the "close" controllers are eligible
  const CapResult r = solve_cap(inst);
  ASSERT_TRUE(r.feasible);
  for (std::size_t i = 0; i < inst.num_switches; ++i) {
    for (const std::size_t j : r.assignment.group_of(i)) {
      EXPECT_LE(inst.cs_delay[i][j], 2.0);
    }
  }
}

TEST(SolveCap, InfeasibleWhenDelayTooTight) {
  CapInstance inst = small_instance();
  inst.max_cs_delay = 0.5;  // nothing is eligible
  EXPECT_FALSE(solve_cap(inst).feasible);
}

TEST(SolveCap, ByzantineControllersExcluded) {
  CapInstance inst = small_instance();
  inst.byzantine[0] = true;
  inst.byzantine[3] = true;
  const CapResult r = solve_cap(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_FALSE(r.assignment.controller_used(0));
  EXPECT_FALSE(r.assignment.controller_used(3));
}

TEST(SolveCap, FixedLeaderIsKept) {
  CapInstance inst = small_instance();
  inst.fixed_leader[0] = 5;
  inst.fixed_leader[2] = 5;
  const CapResult r = solve_cap(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.assignment.assigned(0, 5));
  EXPECT_TRUE(r.assignment.assigned(2, 5));
}

TEST(SolveCap, FixedLeaderOnByzantineIsInfeasible) {
  CapInstance inst = small_instance();
  inst.byzantine[5] = true;
  inst.fixed_leader[0] = 5;
  EXPECT_FALSE(solve_cap(inst).feasible);
}

TEST(SolveCap, C2cConstraintSeparatesFarControllers) {
  // Controllers {0,1,2} mutually close; {3,4,5} mutually close; the two
  // cliques are far apart. With D_c,c tight, no group may mix cliques.
  CapInstance inst = CapInstance::uniform(4, 6, 2, 1.0, 100.0);
  for (std::size_t j = 0; j < 6; ++j) {
    for (std::size_t j2 = 0; j2 < 6; ++j2) {
      const bool same_clique = (j < 3) == (j2 < 3);
      inst.cc_delay[j][j2] = same_clique ? 1.0 : 50.0;
    }
  }
  inst.max_cc_delay = 5.0;
  const CapResult r = solve_cap(inst);
  ASSERT_TRUE(r.feasible);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto group = r.assignment.group_of(i);
    ASSERT_GE(group.size(), 2u);
    const bool first_clique = group[0] < 3;
    for (const std::size_t j : group) EXPECT_EQ(j < 3, first_clique);
  }
}

TEST(SolveCap, LcrRequiresPrevious) {
  const CapInstance inst = small_instance();
  EXPECT_THROW((void)solve_cap(inst, CapObjective::kLeastMovement, nullptr),
               std::invalid_argument);
}

TEST(SolveCap, LcrMovesLessThanOrEqualTcr) {
  // Start from a solved assignment; mark one used controller byzantine and
  // re-solve both ways. LCR must change at most as many links as TCR.
  CapInstance inst = small_instance();
  const CapResult base = solve_cap(inst);
  ASSERT_TRUE(base.feasible);
  const std::size_t victim = base.assignment.group_of(0)[0];
  inst.byzantine[victim] = true;

  const CapResult tcr = solve_cap(inst, CapObjective::kTrivial, &base.assignment);
  const CapResult lcr = solve_cap(inst, CapObjective::kLeastMovement, &base.assignment);
  ASSERT_TRUE(tcr.feasible);
  ASSERT_TRUE(lcr.feasible);
  EXPECT_FALSE(lcr.assignment.controller_used(victim));
  EXPECT_LE(Assignment::pdl(base.assignment, lcr.assignment),
            Assignment::pdl(base.assignment, tcr.assignment) + 1e-9);
}

TEST(SolveCap, TcrAndLcrUseSameControllerCountOnEasyInstances) {
  // Both objectives minimize controller usage first (the paper observes the
  // same used-controller count for TCR and LCR in Fig. 7).
  CapInstance inst = small_instance();
  const CapResult base = solve_cap(inst);
  ASSERT_TRUE(base.feasible);
  inst.byzantine[base.assignment.group_of(0)[0]] = true;
  const CapResult tcr = solve_cap(inst, CapObjective::kTrivial, &base.assignment);
  const CapResult lcr = solve_cap(inst, CapObjective::kLeastMovement, &base.assignment);
  ASSERT_TRUE(tcr.feasible && lcr.feasible);
  EXPECT_EQ(tcr.assignment.controllers_used(), lcr.assignment.controllers_used());
}

TEST(RepairAssign, KeepsLegalLinksAndStripsByzantine) {
  CapInstance inst = small_instance();
  const CapResult base = solve_cap(inst);
  ASSERT_TRUE(base.feasible);
  const std::size_t victim = base.assignment.group_of(1)[0];
  inst.byzantine[victim] = true;
  const auto repaired = repair_assign(inst, base.assignment);
  ASSERT_TRUE(repaired.has_value());
  EXPECT_TRUE(repaired->feasible_for(inst));
  EXPECT_FALSE(repaired->controller_used(victim));
  // Links not involving the victim are preserved.
  for (std::size_t i = 0; i < inst.num_switches; ++i) {
    for (std::size_t j = 0; j < inst.num_controllers; ++j) {
      if (j != victim && base.assignment.assigned(i, j)) {
        EXPECT_TRUE(repaired->assigned(i, j)) << i << "," << j;
      }
    }
  }
}

TEST(SolveCap, PaperScaleInternetLikeInstance) {
  // 34 switches, 16 controllers, f = 1 -> group size 4 (the paper's default
  // Internet2 configuration). Must solve quickly and exactly.
  CapInstance inst = CapInstance::uniform(34, 16, 4, 1.0, 40.0);
  for (std::size_t i = 0; i < 34; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      inst.cs_delay[i][j] = 1.0 + static_cast<double>((i * 7 + j * 13) % 20);
    }
  }
  inst.max_cs_delay = 15.0;
  const CapResult r = solve_cap(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.assignment.feasible_for(inst));
  // 34 switches x group 4 = 136 links; capacity 40 -> at least 4 controllers.
  EXPECT_GE(r.assignment.controllers_used(), 4u);
  EXPECT_LE(r.assignment.controllers_used(), 16u);
}

TEST(SolveCap, StatsArePopulated) {
  const CapResult r = solve_cap(small_instance());
  EXPECT_GT(r.stats.num_variables, 0u);
  EXPECT_GT(r.stats.num_constraints, 0u);
  EXPECT_GE(r.stats.wall_time_ms, 0.0);
}

}  // namespace
}  // namespace curb::opt
