// Adversarial and degenerate inputs for every solver backend: proven
// infeasibility, unbounded and cycling-prone LPs, empty and 1x1 instances,
// plus the CapInstance::validate() regressions (ragged delay matrices used
// to slip through and misindex inside the solvers) and the instance JSON
// round-trip.

#include "curb/opt/solver.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "curb/opt/instance_gen.hpp"
#include "curb/opt/instance_io.hpp"
#include "curb/opt/sparse_lp.hpp"

namespace curb::opt {
namespace {

const CapSolverBackend kAllBackends[] = {
    CapSolverBackend::kDense, CapSolverBackend::kSparse, CapSolverBackend::kHeuristic};

TEST(SolverEdge, CapacityShortfallIsInfeasibleOnEveryBackend) {
  // 4 switches of load 10 need 2 controllers each = 80 load total, but the
  // 3 controllers offer 3 x 5 = 15.
  CapInstance inst = CapInstance::uniform(4, 3, 2, 10.0, 5.0);
  for (const CapSolverBackend backend : kAllBackends) {
    SCOPED_TRACE(to_string(backend));
    const CapResult r = solve_cap_with(backend, inst);
    EXPECT_FALSE(r.feasible);
  }
}

TEST(SolverEdge, GroupLargerThanHonestControllersIsInfeasible) {
  CapInstance inst = CapInstance::uniform(2, 4, 4, 1.0, 100.0);
  inst.byzantine[1] = true;  // only 3 honest controllers remain, B_i = 4
  for (const CapSolverBackend backend : kAllBackends) {
    SCOPED_TRACE(to_string(backend));
    const CapResult r = solve_cap_with(backend, inst);
    EXPECT_FALSE(r.feasible);
  }
}

TEST(SolverEdge, IneligibleFixedLeaderIsInfeasible) {
  CapInstance inst = CapInstance::uniform(2, 4, 2, 1.0, 100.0);
  inst.byzantine[3] = true;
  inst.fixed_leader[0] = 3;  // pinned to a byzantine controller
  for (const CapSolverBackend backend : kAllBackends) {
    SCOPED_TRACE(to_string(backend));
    const CapResult r = solve_cap_with(backend, inst);
    EXPECT_FALSE(r.feasible);
  }
}

TEST(SolverEdge, UnboundedLpAgreesAcrossSimplexes) {
  // minimize -x with x free upward: unbounded below.
  LpProblem lp;
  const int x = lp.add_variable(-1.0, 0.0, LpProblem::kInf);
  const int y = lp.add_variable(0.0, 0.0, LpProblem::kInf);
  lp.add_constraint({{x, 1.0}, {y, -1.0}}, LpProblem::Sense::kLe, 5.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
  EXPECT_EQ(solve_lp_sparse(lp).status, LpStatus::kUnbounded);
}

TEST(SolverEdge, BealeCyclingInstanceTerminatesOptimal) {
  // Beale's classic cycling example: Dantzig pricing with a naive ratio test
  // cycles forever at the degenerate origin. The Bland guard in both
  // simplexes must break the cycle and reach the optimum at -0.05.
  LpProblem lp;
  const int x1 = lp.add_variable(-0.75, 0.0, LpProblem::kInf);
  const int x2 = lp.add_variable(150.0, 0.0, LpProblem::kInf);
  const int x3 = lp.add_variable(-0.02, 0.0, LpProblem::kInf);
  const int x4 = lp.add_variable(6.0, 0.0, LpProblem::kInf);
  lp.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -1.0 / 25.0}, {x4, 9.0}},
                    LpProblem::Sense::kLe, 0.0);
  lp.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -1.0 / 50.0}, {x4, 3.0}},
                    LpProblem::Sense::kLe, 0.0);
  lp.add_constraint({{x3, 1.0}}, LpProblem::Sense::kLe, 1.0);

  const LpSolution dense = solve_lp(lp);
  ASSERT_EQ(dense.status, LpStatus::kOptimal);
  EXPECT_NEAR(dense.objective, -0.05, 1e-9);

  const LpSolution sparse = solve_lp_sparse(lp);
  ASSERT_EQ(sparse.status, LpStatus::kOptimal);
  EXPECT_NEAR(sparse.objective, -0.05, 1e-9);
}

TEST(SolverEdge, DegenerateEqualityLpSolves) {
  // Equality-pinned variables and a redundant row: phase 1 must exit with
  // artificials pinned even though the feasible set is a single point.
  LpProblem lp;
  const int x = lp.add_variable(1.0, 0.0, 10.0);
  const int y = lp.add_variable(2.0, 0.0, 10.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, LpProblem::Sense::kEq, 4.0);
  lp.add_constraint({{x, 2.0}, {y, 2.0}}, LpProblem::Sense::kEq, 8.0);  // redundant
  lp.add_constraint({{x, 1.0}}, LpProblem::Sense::kEq, 3.0);

  for (const LpSolution& sol : {solve_lp(lp), solve_lp_sparse(lp)}) {
    ASSERT_EQ(sol.status, LpStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 3.0 + 2.0 * 1.0, 1e-7);
  }
}

TEST(SolverEdge, EmptyInstanceIsTriviallyFeasible) {
  const CapInstance inst;  // 0 switches, 0 controllers
  for (const CapSolverBackend backend : kAllBackends) {
    SCOPED_TRACE(to_string(backend));
    const CapResult r = solve_cap_with(backend, inst);
    EXPECT_TRUE(r.feasible);
    EXPECT_DOUBLE_EQ(r.objective, 0.0);
    EXPECT_EQ(r.assignment.total_links(), 0u);
  }
}

TEST(SolverEdge, OneByOneInstance) {
  const CapInstance inst = CapInstance::uniform(1, 1, 1, 1.0, 1.0);
  for (const CapSolverBackend backend : kAllBackends) {
    SCOPED_TRACE(to_string(backend));
    const CapResult r = solve_cap_with(backend, inst);
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(r.assignment.assigned(0, 0));
    EXPECT_DOUBLE_EQ(r.objective, 1.0);
  }
}

TEST(SolverEdge, ZeroCapacityZeroLoadIsFeasible) {
  // Loads of exactly zero fit into capacity of exactly zero.
  const CapInstance inst = CapInstance::uniform(2, 2, 1, 0.0, 0.0);
  for (const CapSolverBackend backend : kAllBackends) {
    SCOPED_TRACE(to_string(backend));
    const CapResult r = solve_cap_with(backend, inst);
    EXPECT_TRUE(r.feasible);
  }
}

// --- CapInstance::validate() regressions -----------------------------------
// Ragged delay rows used to pass validation whenever the corresponding
// delay cap was disabled, and then misindex inside the solvers.

TEST(ValidateRegression, RaggedCsDelayRowIsRejected) {
  CapInstance inst = CapInstance::uniform(3, 6, 2, 1.0, 100.0);
  inst.cs_delay[2].resize(3);  // 3 columns instead of 6
  EXPECT_THROW(
      {
        try {
          inst.validate();
        } catch (const std::invalid_argument& e) {
          EXPECT_NE(std::string{e.what()}.find("cs_delay row 2"), std::string::npos)
              << e.what();
          throw;
        }
      },
      std::invalid_argument);
  // The cap being disabled is NOT an excuse: every solver indexes the matrix.
  inst.max_cs_delay = CapInstance::kNoLimit;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(ValidateRegression, RaggedCcDelayRowIsRejectedEvenWithoutCap) {
  CapInstance inst = CapInstance::uniform(3, 4, 2, 1.0, 100.0);
  ASSERT_EQ(inst.max_cc_delay, CapInstance::kNoLimit);
  inst.cc_delay[1].push_back(0.0);  // 5 columns instead of 4
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(ValidateRegression, MissingCcDelayOnlyAllowedWithoutCap) {
  CapInstance inst = CapInstance::uniform(3, 4, 2, 1.0, 100.0);
  inst.cc_delay.clear();  // fine: the C2C constraint is disabled
  EXPECT_NO_THROW(inst.validate());
  inst.max_cc_delay = 10.0;  // now the solvers would index an empty matrix
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(ValidateRegression, TruncatedCcDelayIsRejected) {
  CapInstance inst = CapInstance::uniform(3, 4, 2, 1.0, 100.0);
  inst.cc_delay.resize(2);  // 2 rows instead of 4
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(ValidateRegression, FixedLeaderOutOfRangeIsRejected) {
  CapInstance inst = CapInstance::uniform(2, 4, 2, 1.0, 100.0);
  inst.fixed_leader[1] = 4;  // controllers are 0..3
  EXPECT_THROW(inst.validate(), std::invalid_argument);
  inst.fixed_leader[1] = -2;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(ValidateRegression, NegativeLoadOrCapacityIsRejected) {
  CapInstance load = CapInstance::uniform(2, 2, 1, 1.0, 100.0);
  load.switch_load[0] = -1.0;
  EXPECT_THROW(load.validate(), std::invalid_argument);
  CapInstance cap = CapInstance::uniform(2, 2, 1, 1.0, 100.0);
  cap.controller_capacity[1] = -0.5;
  EXPECT_THROW(cap.validate(), std::invalid_argument);
}

// --- Instance JSON round-trip ----------------------------------------------

TEST(InstanceIo, RoundTripPreservesEverything) {
  GenProfile profile;
  profile.switches = 7;
  profile.controllers = 5;
  profile.cs_delay_cap = true;
  profile.cc_delay_cap = true;
  profile.byzantine_frac = 0.2;
  profile.fixed_leader_frac = 0.4;
  profile.seed = 99;
  StoredInstance stored;
  stored.name = "roundtrip";
  stored.instance = generate_instance(profile);
  stored.tcr_optimum = 4.0;
  stored.feasible = true;

  const StoredInstance back = instance_from_json(instance_to_json(stored));
  EXPECT_EQ(back.name, "roundtrip");
  EXPECT_EQ(back.instance.num_switches, stored.instance.num_switches);
  EXPECT_EQ(back.instance.num_controllers, stored.instance.num_controllers);
  EXPECT_EQ(back.instance.group_size, stored.instance.group_size);
  EXPECT_EQ(back.instance.switch_load, stored.instance.switch_load);
  EXPECT_EQ(back.instance.controller_capacity, stored.instance.controller_capacity);
  EXPECT_EQ(back.instance.cs_delay, stored.instance.cs_delay);
  EXPECT_EQ(back.instance.cc_delay, stored.instance.cc_delay);
  EXPECT_EQ(back.instance.byzantine, stored.instance.byzantine);
  EXPECT_EQ(back.instance.fixed_leader, stored.instance.fixed_leader);
  EXPECT_DOUBLE_EQ(back.instance.max_cs_delay, stored.instance.max_cs_delay);
  EXPECT_DOUBLE_EQ(back.instance.max_cc_delay, stored.instance.max_cc_delay);
  ASSERT_TRUE(back.tcr_optimum);
  EXPECT_DOUBLE_EQ(*back.tcr_optimum, 4.0);
  ASSERT_TRUE(back.feasible);
  EXPECT_TRUE(*back.feasible);
}

TEST(InstanceIo, InfiniteDelayCapsRoundTripAsNull) {
  StoredInstance stored;
  stored.instance = CapInstance::uniform(2, 2, 1, 1.0, 10.0);
  const std::string json = instance_to_json(stored);
  EXPECT_NE(json.find("\"max_cs_delay\": null"), std::string::npos);
  const StoredInstance back = instance_from_json(json);
  EXPECT_EQ(back.instance.max_cs_delay, CapInstance::kNoLimit);
  EXPECT_EQ(back.instance.max_cc_delay, CapInstance::kNoLimit);
  EXPECT_FALSE(back.tcr_optimum);
  EXPECT_FALSE(back.feasible);
}

TEST(InstanceIo, MalformedDocumentsThrow) {
  EXPECT_THROW((void)instance_from_json("not json"), std::runtime_error);
  EXPECT_THROW((void)instance_from_json("[]"), std::runtime_error);
  EXPECT_THROW((void)instance_from_json("{\"num_switches\": 2}"), std::runtime_error);
}

TEST(InstanceIo, LoadedInstanceIsValidated) {
  // A dimensionally broken document must be rejected by validate(), not
  // handed to a solver.
  StoredInstance stored;
  stored.instance = CapInstance::uniform(3, 3, 1, 1.0, 10.0);
  std::string json = instance_to_json(stored);
  const std::string needle = "\"num_switches\": 3";
  const auto pos = json.find(needle);
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, needle.size(), "\"num_switches\": 4");
  EXPECT_THROW((void)instance_from_json(json), std::invalid_argument);
}

}  // namespace
}  // namespace curb::opt
