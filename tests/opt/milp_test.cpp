#include "curb/opt/milp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace curb::opt {
namespace {

TEST(Milp, BinaryKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (as minimization of negatives).
  LpProblem p;
  const int a = p.add_variable(-10.0, 0.0, 1.0);
  const int b = p.add_variable(-6.0, 0.0, 1.0);
  const int c = p.add_variable(-4.0, 0.0, 1.0);
  p.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, LpProblem::Sense::kLe, 2.0);
  MilpSolver solver{p};
  solver.set_binary({a, b, c});
  const MilpSolution s = solver.solve();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -16.0, 1e-6);
  EXPECT_DOUBLE_EQ(s.values[0], 1.0);
  EXPECT_DOUBLE_EQ(s.values[1], 1.0);
  EXPECT_DOUBLE_EQ(s.values[2], 0.0);
}

TEST(Milp, FractionalRelaxationForcedIntegral) {
  // min x+y s.t. 2x + 2y >= 3, binaries. LP gives 1.5; MILP needs 2.
  LpProblem p;
  const int x = p.add_variable(1.0, 0.0, 1.0);
  const int y = p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({{x, 2.0}, {y, 2.0}}, LpProblem::Sense::kGe, 3.0);
  MilpSolver solver{p};
  solver.set_binary({x, y});
  const MilpSolution s = solver.solve();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-6);
}

TEST(Milp, SetCover) {
  // Universe {0..4}; sets: {0,1,2}, {2,3}, {3,4}, {0,4}; optimal cover = 2.
  LpProblem p;
  std::vector<int> sets;
  for (int j = 0; j < 4; ++j) sets.push_back(p.add_variable(1.0, 0.0, 1.0));
  const int membership[4][5] = {
      {1, 1, 1, 0, 0}, {0, 0, 1, 1, 0}, {0, 0, 0, 1, 1}, {1, 0, 0, 0, 1}};
  for (int e = 0; e < 5; ++e) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < 4; ++j) {
      if (membership[j][e]) terms.push_back({sets[static_cast<std::size_t>(j)], 1.0});
    }
    p.add_constraint(std::move(terms), LpProblem::Sense::kGe, 1.0);
  }
  MilpSolver solver{p};
  solver.set_binary(sets);
  const MilpSolution s = solver.solve();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-6);
}

TEST(Milp, InfeasibleDetected) {
  LpProblem p;
  const int x = p.add_variable(1.0, 0.0, 1.0);
  const int y = p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, LpProblem::Sense::kGe, 3.0);  // max is 2
  MilpSolver solver{p};
  solver.set_binary({x, y});
  EXPECT_EQ(solver.solve().status, LpStatus::kInfeasible);
}

TEST(Milp, IncumbentPrunesEqualSolutions) {
  // Optimal objective is 2; with incumbent 2 the solver must NOT return a
  // solution (nothing strictly better exists).
  LpProblem p;
  const int x = p.add_variable(1.0, 0.0, 1.0);
  const int y = p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({{x, 1.0}}, LpProblem::Sense::kGe, 1.0);
  p.add_constraint({{y, 1.0}}, LpProblem::Sense::kGe, 1.0);
  MilpSolver solver{p};
  solver.set_binary({x, y});
  MilpOptions opts;
  opts.incumbent_objective = 2.0;
  EXPECT_EQ(solver.solve(opts).status, LpStatus::kInfeasible);
  opts.incumbent_objective = 3.0;
  EXPECT_EQ(solver.solve(opts).status, LpStatus::kOptimal);
}

TEST(Milp, MixedIntegerContinuous) {
  // min -x - 0.5y, x binary, y continuous <= 1.5, x + y <= 2.
  LpProblem p;
  const int x = p.add_variable(-1.0, 0.0, 1.0);
  const int y = p.add_variable(-0.5, 0.0, 1.5);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, LpProblem::Sense::kLe, 2.0);
  MilpSolver solver{p};
  solver.set_binary(x);
  const MilpSolution s = solver.solve();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.values[0], 1.0);
  EXPECT_NEAR(s.values[1], 1.0, 1e-6);
  EXPECT_NEAR(s.objective, -1.5, 1e-6);
}

TEST(Milp, RejectsNonBinaryBounds) {
  LpProblem p;
  const int x = p.add_variable(1.0, 0.0, 5.0);
  MilpSolver solver{p};
  EXPECT_THROW(solver.set_binary(x), std::invalid_argument);
  EXPECT_THROW(solver.set_binary(42), std::out_of_range);
}

TEST(Milp, NodeLimitReported) {
  // A 12-variable parity-ish problem explored with node limit 1.
  LpProblem p;
  std::vector<int> vars;
  for (int j = 0; j < 12; ++j) vars.push_back(p.add_variable(1.0, 0.0, 1.0));
  std::vector<std::pair<int, double>> all;
  for (const int v : vars) all.push_back({v, 2.0});
  p.add_constraint(std::move(all), LpProblem::Sense::kGe, 11.0);
  MilpSolver solver{p};
  solver.set_binary(vars);
  MilpOptions opts;
  opts.max_nodes = 1;
  const MilpSolution s = solver.solve(opts);
  EXPECT_TRUE(s.hit_node_limit);
}

TEST(Milp, LargerCoveringProblemOptimal) {
  // 30 elements, 12 sets with deterministic structure; verify optimality by
  // checking the solution is a valid cover and the LP bound is tight-ish.
  LpProblem p;
  std::vector<int> sets;
  for (int j = 0; j < 12; ++j) sets.push_back(p.add_variable(1.0, 0.0, 1.0));
  for (int e = 0; e < 30; ++e) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < 12; ++j) {
      if ((e * 7 + j * 3) % 5 == 0 || (e + j) % 4 == 0) {
        terms.push_back({sets[static_cast<std::size_t>(j)], 1.0});
      }
    }
    ASSERT_FALSE(terms.empty()) << "element " << e << " uncoverable";
    p.add_constraint(std::move(terms), LpProblem::Sense::kGe, 1.0);
  }
  MilpSolver solver{p};
  solver.set_binary(sets);
  const MilpSolution s = solver.solve();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  for (const double v : s.values) {
    EXPECT_TRUE(std::abs(v) < 1e-9 || std::abs(v - 1.0) < 1e-9);
  }
}

}  // namespace
}  // namespace curb::opt
