#include "curb/opt/lp.hpp"

#include <gtest/gtest.h>

namespace curb::opt {
namespace {

TEST(Lp, SimpleTwoVariableMaximizationAsMinimization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0  -> x=4, y=0, obj=12.
  LpProblem p;
  const int x = p.add_variable(-3.0);
  const int y = p.add_variable(-2.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, LpProblem::Sense::kLe, 4.0);
  p.add_constraint({{x, 1.0}, {y, 3.0}}, LpProblem::Sense::kLe, 6.0);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -12.0, 1e-6);
  EXPECT_NEAR(s.values[0], 4.0, 1e-6);
  EXPECT_NEAR(s.values[1], 0.0, 1e-6);
}

TEST(Lp, GreaterEqualAndEquality) {
  // min x + y s.t. x + y >= 3, x - y = 1 -> x=2, y=1, obj=3.
  LpProblem p;
  const int x = p.add_variable(1.0);
  const int y = p.add_variable(1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, LpProblem::Sense::kGe, 3.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, LpProblem::Sense::kEq, 1.0);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-6);
  EXPECT_NEAR(s.values[0], 2.0, 1e-6);
  EXPECT_NEAR(s.values[1], 1.0, 1e-6);
}

TEST(Lp, RespectsUpperBounds) {
  // min -x - y with x <= 0.5, y <= 0.25 -> both at upper bound.
  LpProblem p;
  const int x = p.add_variable(-1.0, 0.0, 0.5);
  const int y = p.add_variable(-1.0, 0.0, 0.25);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, LpProblem::Sense::kLe, 10.0);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 0.5, 1e-6);
  EXPECT_NEAR(s.values[1], 0.25, 1e-6);
}

TEST(Lp, BoundFlipPath) {
  // min -x s.t. y - x >= 0, x,y in [0,1]: x=1 forces y=1 via the constraint.
  LpProblem p;
  const int x = p.add_variable(-1.0, 0.0, 1.0);
  const int y = p.add_variable(0.0, 0.0, 1.0);
  p.add_constraint({{y, 1.0}, {x, -1.0}}, LpProblem::Sense::kGe, 0.0);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 1.0, 1e-6);
}

TEST(Lp, DetectsInfeasible) {
  LpProblem p;
  const int x = p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({{x, 1.0}}, LpProblem::Sense::kGe, 2.0);  // x >= 2 but x <= 1
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

TEST(Lp, DetectsInfeasibleSystem) {
  LpProblem p;
  const int x = p.add_variable(0.0);
  const int y = p.add_variable(0.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, LpProblem::Sense::kLe, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, LpProblem::Sense::kGe, 2.0);
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

TEST(Lp, DetectsUnbounded) {
  LpProblem p;
  const int x = p.add_variable(-1.0);  // min -x, x unbounded above
  p.add_constraint({{x, 1.0}}, LpProblem::Sense::kGe, 0.0);
  EXPECT_EQ(solve_lp(p).status, LpStatus::kUnbounded);
}

TEST(Lp, DegenerateProblemTerminates) {
  // Klee-Minty-flavoured degenerate rows should not cycle.
  LpProblem p;
  const int x = p.add_variable(-1.0, 0.0, 1.0);
  const int y = p.add_variable(-1.0, 0.0, 1.0);
  const int z = p.add_variable(-1.0, 0.0, 1.0);
  p.add_constraint({{x, 1.0}}, LpProblem::Sense::kLe, 0.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, LpProblem::Sense::kLe, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}, {z, 1.0}}, LpProblem::Sense::kLe, 1.0);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-6);
  EXPECT_NEAR(s.values[0], 0.0, 1e-6);
}

TEST(Lp, EqualityOnlySystem) {
  // min x+2y s.t. x+y=2, x-y=0 -> x=y=1, obj=3.
  LpProblem p;
  const int x = p.add_variable(1.0);
  const int y = p.add_variable(2.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, LpProblem::Sense::kEq, 2.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, LpProblem::Sense::kEq, 0.0);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-6);
}

TEST(Lp, FixedVariableViaBounds) {
  LpProblem p;
  const int x = p.add_variable(1.0, 0.0, 1.0);
  const int y = p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, LpProblem::Sense::kGe, 1.0);
  p.set_bounds(x, 1.0, 1.0);  // pin x = 1
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 1.0, 1e-9);
  EXPECT_NEAR(s.values[1], 0.0, 1e-9);
}

TEST(Lp, RejectsBadInput) {
  LpProblem p;
  EXPECT_THROW((void)p.add_variable(1.0, 2.0, 1.0), std::invalid_argument);
  const int x = p.add_variable(1.0);
  EXPECT_THROW(p.add_constraint({{x + 5, 1.0}}, LpProblem::Sense::kLe, 1.0),
               std::out_of_range);
  EXPECT_THROW(p.set_bounds(x, 3.0, 2.0), std::invalid_argument);
}

TEST(Lp, MediumRandomCoverInstanceSolves) {
  // A 20-switch / 10-controller style covering relaxation: each "switch"
  // needs coverage >= 2 from a random eligible subset.
  LpProblem p;
  std::vector<int> vars;
  for (int j = 0; j < 10; ++j) vars.push_back(p.add_variable(1.0, 0.0, 1.0));
  for (int i = 0; i < 20; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < 10; ++j) {
      if ((i + j) % 3 != 0) terms.push_back({vars[static_cast<std::size_t>(j)], 1.0});
    }
    p.add_constraint(std::move(terms), LpProblem::Sense::kGe, 2.0);
  }
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_GT(s.objective, 0.0);
  EXPECT_LE(s.objective, 10.0);
}

}  // namespace
}  // namespace curb::opt
