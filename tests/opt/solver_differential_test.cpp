// Differential solver-backend harness: every backend solves the same seeded
// random instances and the results are cross-checked — the exact backends
// must agree with each other exactly, and the heuristic must stay feasible
// and within a bounded gap. A failing instance is dumped as JSON into
// CURB_FUZZ_DIR (default fuzz-failures/) so CI can upload it and
// `curb-capgen --in <file> --solve` can replay it.

#include "curb/opt/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "curb/opt/instance_gen.hpp"
#include "curb/opt/instance_io.hpp"
#include "curb/opt/sparse_lp.hpp"

namespace curb::opt {
namespace {

void dump_failure(const CapInstance& inst, const std::string& name) {
  const char* env = std::getenv("CURB_FUZZ_DIR");
  const std::string dir = env != nullptr ? env : "fuzz-failures";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  StoredInstance stored;
  stored.name = name;
  stored.instance = inst;
  if (save_instance(stored, dir + "/" + name + ".json")) {
    std::fprintf(stderr, "dumped failing instance to %s/%s.json\n", dir.c_str(),
                 name.c_str());
  }
}

[[nodiscard]] std::string profile_name(const GenProfile& p) {
  std::string name = "s" + std::to_string(p.switches) + "-c" +
                     std::to_string(p.controllers) + "-seed" + std::to_string(p.seed);
  name += "-slack" + std::to_string(static_cast<int>(p.capacity_slack * 100));
  if (p.cs_delay_cap) name += "-dcs";
  if (p.cc_delay_cap) name += "-dcc";
  if (p.byzantine_frac > 0) name += "-byz";
  if (p.fixed_leader_frac > 0) name += "-lead";
  return name;
}

/// The sweep: sizes around and past the unit-test sweet spot, tight and
/// loose capacities, delay caps, byzantine exclusions, fixed leaders, and
/// deliberately capacity-starved (usually infeasible) profiles.
[[nodiscard]] std::vector<GenProfile> sweep_profiles() {
  std::vector<GenProfile> out;
  for (const std::uint64_t seed : {1ULL, 2ULL}) {
    for (const double slack : {1.15, 2.0}) {
      for (const bool cs_cap : {false, true}) {
        for (const double byz : {0.0, 0.2}) {
          GenProfile p;
          p.switches = seed == 1 ? 10 : 18;
          p.controllers = seed == 1 ? 6 : 8;
          p.capacity_slack = slack;
          p.cs_delay_cap = cs_cap;
          p.byzantine_frac = byz;
          p.fixed_leader_frac = seed == 2 ? 0.3 : 0.0;
          p.seed = seed * 1000 + static_cast<std::uint64_t>(slack * 100) +
                   (cs_cap ? 7 : 0) + (byz > 0 ? 31 : 0);
          out.push_back(p);
        }
      }
    }
  }
  // The quadratic C2C constraint family (kept small: pair-exclusion rows
  // multiply fast).
  for (const std::uint64_t seed : {5ULL, 6ULL}) {
    GenProfile p;
    p.switches = 8;
    p.controllers = 6;
    p.cs_delay_cap = true;
    p.cc_delay_cap = true;
    p.seed = seed;
    out.push_back(p);
  }
  // Capacity-starved: usually infeasible — the backends must agree on that
  // verdict too (and the heuristic must never fabricate feasibility).
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    GenProfile p;
    p.switches = 12;
    p.controllers = 5;
    p.capacity_slack = 0.45;
    p.seed = seed;
    out.push_back(p);
  }
  return out;
}

TEST(SolverDifferential, BackendsAgreeOnTcr) {
  for (const GenProfile& profile : sweep_profiles()) {
    const CapInstance inst = generate_instance(profile);
    const std::string name = profile_name(profile);
    SCOPED_TRACE(name);

    const CapResult dense = solve_cap_with(CapSolverBackend::kDense, inst);
    const CapResult sparse = solve_cap_with(CapSolverBackend::kSparse, inst);
    const CapResult heur = solve_cap_with(CapSolverBackend::kHeuristic, inst);

    // The exact backends must agree on feasibility and on the optimum.
    if (dense.feasible != sparse.feasible) {
      dump_failure(inst, "tcr-feas-" + name);
      FAIL() << "dense feasible=" << dense.feasible
             << " but sparse feasible=" << sparse.feasible;
    }
    if (dense.feasible && std::abs(dense.objective - sparse.objective) > 1e-6) {
      dump_failure(inst, "tcr-obj-" + name);
      FAIL() << "dense objective=" << dense.objective
             << " != sparse objective=" << sparse.objective;
    }

    // Every returned assignment must satisfy every constraint.
    if (dense.feasible) {
      EXPECT_TRUE(dense.assignment.feasible_for(inst));
    }
    if (sparse.feasible) {
      EXPECT_TRUE(sparse.assignment.feasible_for(inst));
    }
    if (heur.feasible) {
      EXPECT_TRUE(heur.assignment.feasible_for(inst));
    }

    // The heuristic can miss feasible instances but must never claim a
    // feasible solution to an infeasible one...
    if (heur.feasible && !dense.feasible) {
      dump_failure(inst, "tcr-heur-feas-" + name);
      FAIL() << "heuristic found a solution where the exact solver proved "
                "infeasibility";
    }
    // ...and when both succeed the gap must stay bounded.
    if (heur.feasible && dense.feasible) {
      EXPECT_GE(heur.objective, dense.objective - 1e-9);
      if (heur.objective > 2.0 * dense.objective + 2.0) {
        dump_failure(inst, "tcr-gap-" + name);
        FAIL() << "heuristic objective " << heur.objective
               << " exceeds bound vs optimum " << dense.objective;
      }
    }
    // On loose-capacity feasible instances the heuristic must not give up.
    if (dense.feasible && profile.capacity_slack >= 2.0) {
      EXPECT_TRUE(heur.feasible) << "heuristic gave up on an easy instance";
    }
  }
}

TEST(SolverDifferential, BackendsAgreeOnLcrReassignment) {
  for (const GenProfile& base : sweep_profiles()) {
    if (base.capacity_slack < 1.0) continue;  // need a feasible starting point
    GenProfile profile = base;
    profile.byzantine_frac = 0.0;  // the reassignment will add the exclusions
    const CapInstance inst = generate_instance(profile);
    const std::string name = profile_name(profile);
    SCOPED_TRACE(name);

    const CapResult start = solve_cap_with(CapSolverBackend::kDense, inst);
    if (!start.feasible) continue;

    // RE-ASS: one controller in the current assignment turns byzantine.
    CapInstance reass = inst;
    reass.byzantine.assign(inst.num_controllers, false);
    for (std::size_t j = 0; j < inst.num_controllers; ++j) {
      if (start.assignment.controller_used(j)) {
        reass.byzantine[j] = true;
        break;
      }
    }
    // A fixed leader that just went byzantine would make the instance
    // trivially infeasible; drop those pins.
    for (auto& leader : reass.fixed_leader) {
      if (leader && reass.byzantine[static_cast<std::size_t>(*leader)]) {
        leader = std::nullopt;
      }
    }

    const Assignment* prev = &start.assignment;
    const CapResult dense =
        solve_cap_with(CapSolverBackend::kDense, reass, CapObjective::kLeastMovement, prev);
    const CapResult sparse = solve_cap_with(CapSolverBackend::kSparse, reass,
                                            CapObjective::kLeastMovement, prev);
    const CapResult heur = solve_cap_with(CapSolverBackend::kHeuristic, reass,
                                          CapObjective::kLeastMovement, prev);

    if (dense.feasible != sparse.feasible) {
      dump_failure(reass, "lcr-feas-" + name);
      FAIL() << "LCR: dense feasible=" << dense.feasible
             << " but sparse feasible=" << sparse.feasible;
    }
    if (dense.feasible && std::abs(dense.objective - sparse.objective) > 1e-6) {
      dump_failure(reass, "lcr-obj-" + name);
      FAIL() << "LCR: dense objective=" << dense.objective
             << " != sparse objective=" << sparse.objective;
    }
    if (dense.feasible) {
      EXPECT_TRUE(dense.assignment.feasible_for(reass));
      // The MILP objective and the direct recount must agree.
      EXPECT_NEAR(dense.objective,
                  cap_objective_value(dense.assignment, CapObjective::kLeastMovement, prev),
                  1e-6);
    }
    if (heur.feasible) {
      EXPECT_TRUE(heur.assignment.feasible_for(reass));
      if (dense.feasible) {
        // The optimum lower-bounds any feasible LCR value.
        EXPECT_GE(heur.objective, dense.objective - 1e-9);
      } else {
        dump_failure(reass, "lcr-heur-feas-" + name);
        FAIL() << "LCR: heuristic found a solution on an infeasible instance";
      }
    }
  }
}

TEST(SolverDifferential, EveryBackendIsDeterministic) {
  GenProfile profile;
  profile.switches = 16;
  profile.controllers = 8;
  profile.cs_delay_cap = true;
  profile.byzantine_frac = 0.2;
  profile.fixed_leader_frac = 0.2;
  profile.seed = 77;
  const CapInstance a = generate_instance(profile);
  const CapInstance b = generate_instance(profile);
  // The generator itself must be bit-deterministic.
  ASSERT_EQ(a.cs_delay, b.cs_delay);
  ASSERT_EQ(a.controller_capacity, b.controller_capacity);

  for (const CapSolverBackend backend :
       {CapSolverBackend::kDense, CapSolverBackend::kSparse,
        CapSolverBackend::kHeuristic}) {
    SCOPED_TRACE(to_string(backend));
    const CapResult first = solve_cap_with(backend, a);
    const CapResult second = solve_cap_with(backend, b);
    ASSERT_EQ(first.feasible, second.feasible);
    if (first.feasible) {
      EXPECT_EQ(first.assignment, second.assignment);
      EXPECT_DOUBLE_EQ(first.objective, second.objective);
    }
  }
}

TEST(SolverDifferential, PersistentSparseSolverWarmStartsStayExact) {
  GenProfile profile;
  profile.switches = 20;
  profile.controllers = 8;
  profile.cs_delay_cap = true;
  profile.seed = 41;
  const CapInstance inst = generate_instance(profile);

  CapSolverOptions options;
  auto solver = make_cap_solver(CapSolverBackend::kSparse, options);
  const CapResult cold = solver->solve(inst);
  ASSERT_TRUE(cold.feasible);
  EXPECT_EQ(cold.stats.backend, "sparse");

  // Successive byzantine exclusions, each warm-started from the last result
  // via the solver's cached assignment. Every solve must still match the
  // from-scratch dense optimum.
  CapInstance current = inst;
  current.byzantine.assign(inst.num_controllers, false);
  std::size_t flagged = 0;
  for (std::size_t j = 0; j < inst.num_controllers && flagged < 2; ++j) {
    if (!cold.assignment.controller_used(j)) continue;
    current.byzantine[j] = true;
    ++flagged;
    const CapResult warm = solver->solve(current);
    const CapResult reference = solve_cap_with(CapSolverBackend::kDense, current);
    ASSERT_EQ(warm.feasible, reference.feasible);
    if (warm.feasible) {
      EXPECT_TRUE(warm.assignment.feasible_for(current));
      EXPECT_NEAR(warm.objective, reference.objective, 1e-6);
    }
  }
}

TEST(SolverDifferential, SparseLpMatchesDenseOnCapRelaxations) {
  // LP-level differential: the raw relaxation objective (before any
  // branching) must agree between the dense tableau and the sparse revised
  // simplex on every sweep instance. This isolates simplex bugs from B&B
  // bugs when the CAP-level differential fails.
  for (const GenProfile& profile : sweep_profiles()) {
    const CapInstance inst = generate_instance(profile);
    SCOPED_TRACE(profile_name(profile));

    LpProblem lp;
    std::vector<std::vector<int>> a_var(inst.num_switches,
                                        std::vector<int>(inst.num_controllers, -1));
    for (std::size_t i = 0; i < inst.num_switches; ++i) {
      for (std::size_t j = 0; j < inst.num_controllers; ++j) {
        const bool byz = !inst.byzantine.empty() && inst.byzantine[j];
        const bool far = inst.max_cs_delay != CapInstance::kNoLimit &&
                         inst.cs_delay[i][j] > inst.max_cs_delay;
        if (byz || far) continue;
        a_var[i][j] = lp.add_variable(static_cast<double>(i % 3) * 0.25 + 0.5, 0.0, 1.0);
      }
    }
    bool feasible_candidate = true;
    for (std::size_t i = 0; i < inst.num_switches; ++i) {
      std::vector<std::pair<int, double>> terms;
      for (std::size_t j = 0; j < inst.num_controllers; ++j) {
        if (a_var[i][j] >= 0) terms.push_back({a_var[i][j], 1.0});
      }
      if (terms.size() < static_cast<std::size_t>(inst.group_size[i])) {
        feasible_candidate = false;
        break;
      }
      lp.add_constraint(std::move(terms), LpProblem::Sense::kGe,
                        static_cast<double>(inst.group_size[i]));
    }
    if (!feasible_candidate) continue;
    for (std::size_t j = 0; j < inst.num_controllers; ++j) {
      std::vector<std::pair<int, double>> terms;
      for (std::size_t i = 0; i < inst.num_switches; ++i) {
        if (a_var[i][j] >= 0) terms.push_back({a_var[i][j], inst.switch_load[i]});
      }
      if (!terms.empty()) {
        lp.add_constraint(std::move(terms), LpProblem::Sense::kLe,
                          inst.controller_capacity[j]);
      }
    }

    const LpSolution dense = solve_lp(lp);
    const LpSolution sparse = solve_lp_sparse(lp);
    ASSERT_EQ(dense.status, sparse.status);
    if (dense.status == LpStatus::kOptimal) {
      EXPECT_NEAR(dense.objective, sparse.objective, 1e-6);
    }
  }
}

}  // namespace
}  // namespace curb::opt
