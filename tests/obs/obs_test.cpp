#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "curb/obs/export.hpp"
#include "curb/obs/metrics.hpp"
#include "curb/obs/observatory.hpp"
#include "curb/obs/trace.hpp"
#include "curb/sim/simulator.hpp"
#include "curb/sim/time.hpp"

namespace curb::obs {
namespace {

using namespace curb::sim::literals;

// ---------------------------------------------------------------- metrics

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddAndHighWater) {
  Gauge g;
  g.set(3.0);
  g.add(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set_max(4.0);  // below current -> unchanged
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(Histogram, BucketBoundariesAreLogScale) {
  // Defaults: bound[i] = 1 * 2^i for i in [0, 32), then +inf overflow.
  Histogram h;
  EXPECT_EQ(h.bucket_count(), 33u);
  EXPECT_DOUBLE_EQ(h.upper_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(h.upper_bound(1), 2.0);
  EXPECT_DOUBLE_EQ(h.upper_bound(10), 1024.0);
  EXPECT_DOUBLE_EQ(h.upper_bound(31), std::ldexp(1.0, 31));
  EXPECT_TRUE(std::isinf(h.upper_bound(32)));
}

TEST(Histogram, RecordLandsInCorrectBucket) {
  Histogram h;
  // Bucket i covers (bound[i-1], bound[i]]: a value exactly on a bound goes
  // in that bound's bucket.
  h.record(1.0);    // bucket 0 (v <= 1)
  h.record(2.0);    // bucket 1 (1 < v <= 2)
  h.record(2.5);    // bucket 2 (2 < v <= 4)
  h.record(1e12);   // overflow bucket
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(1), 1u);
  EXPECT_EQ(h.count_at(2), 1u);
  EXPECT_EQ(h.count_at(32), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
}

TEST(Histogram, SummaryStatistics) {
  Histogram h;
  for (const double v : {10.0, 20.0, 30.0, 40.0}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
  // Percentiles interpolate inside a bucket, so only bounds are guaranteed.
  const double p50 = h.percentile(50.0);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 40.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 40.0);
}

TEST(Histogram, PercentileOfConstantStream) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(7.0);
  // All mass in one bucket and min == max: interpolation must collapse.
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 7.0);
}

TEST(Histogram, EmptyAndInvalidInputs) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_THROW((void)h.percentile(-1.0), std::invalid_argument);
  EXPECT_THROW((void)h.percentile(100.5), std::invalid_argument);
  EXPECT_THROW(Histogram({.first_bound = 0.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({.growth = 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({.finite_buckets = 0}), std::invalid_argument);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  h.record(5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  for (std::size_t i = 0; i < h.bucket_count(); ++i) EXPECT_EQ(h.count_at(i), 0u);
}

TEST(MetricsRegistry, SameSeriesResolvesToSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("net.messages", {{"category", "AGREE"}});
  // Label order must not matter for identity.
  Counter& b = reg.counter("net.messages", {{"category", "AGREE"}});
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  // A different label value is a different series.
  Counter& c = reg.counter("net.messages", {{"category", "REPLY"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, LabelOrderNormalized) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x", {{"b", "2"}, {"a", "1"}});
  Counter& b = reg.counter("x", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  (void)reg.counter("dual");
  EXPECT_THROW((void)reg.gauge("dual"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("dual"), std::logic_error);
}

TEST(MetricsRegistry, SeriesKeyFormat) {
  EXPECT_EQ(MetricsRegistry::series_key("up", {}), "up");
  EXPECT_EQ(MetricsRegistry::series_key("net.delay_us", {{"category", "AGREE"}}),
            "net.delay_us{category=\"AGREE\"}");
  EXPECT_EQ(MetricsRegistry::series_key("d", {{"a", "1"}, {"b", "2"}}),
            "d{a=\"1\",b=\"2\"}");
}

// ----------------------------------------------------------------- tracer

struct TracerFixture {
  TracerFixture() {
    tracer.bind_clock(sim);
    tracer.set_enabled(true);
  }
  sim::Simulator sim;
  Tracer tracer;
};

TEST(Tracer, DisabledPathHandsOutInvalidIds) {
  Tracer t;  // never enabled (no clock bound)
  t.set_enabled(true);
  EXPECT_FALSE(t.enabled());
  const SpanId id = t.begin("x", "track");
  EXPECT_FALSE(id.valid());
  t.end(id);  // no-op, must not crash
  EXPECT_FALSE(t.begin_keyed(1, "x", "track"));
  EXPECT_FALSE(t.end_keyed(1));
  t.instant("x", "track");
  EXPECT_TRUE(t.spans().empty());
  EXPECT_TRUE(t.tracks().empty());
}

TEST(Tracer, NestingFollowsOpenStackPerTrack) {
  TracerFixture f;
  const SpanId outer = f.tracer.begin("outer", "t0");
  const SpanId inner = f.tracer.begin("inner", "t0");
  const SpanId other = f.tracer.begin("elsewhere", "t1");  // separate track
  f.tracer.end(inner);
  f.tracer.end(outer);
  f.tracer.end(other);

  const auto& spans = f.tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, 0u);  // root
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, outer.value);
  EXPECT_EQ(spans[2].parent, 0u);  // other track -> not nested under t0
  EXPECT_EQ(f.tracer.open_count(), 0u);
  // Ids are dense and 1-based in begin order.
  EXPECT_EQ(spans[0].id, 1u);
  EXPECT_EQ(spans[1].id, 2u);
  EXPECT_EQ(spans[2].id, 3u);
}

TEST(Tracer, BeginUnderParentsExplicitly) {
  TracerFixture f;
  const SpanId slot_a = f.tracer.begin_under({}, "slot", "t");
  const SpanId slot_b = f.tracer.begin_under({}, "slot", "t");  // interleaved
  const SpanId phase_a = f.tracer.begin_under(slot_a, "phase", "t");
  // Explicit spans bypass the stack: a later begin() does not nest in them.
  const SpanId stacked = f.tracer.begin("stacked", "t");
  const auto& spans = f.tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, 0u);  // root despite slot_a still open
  EXPECT_EQ(spans[2].parent, slot_a.value);
  EXPECT_EQ(spans[3].parent, 0u);  // not under slot_b/phase_a
  f.tracer.end(phase_a);
  f.tracer.end(slot_b);
  f.tracer.end(slot_a);
  f.tracer.end(stacked);
  EXPECT_EQ(f.tracer.open_count(), 0u);
  EXPECT_FALSE(spans[2].open);
}

TEST(Tracer, SpansCaptureVirtualTime) {
  TracerFixture f;
  SpanId id;
  f.sim.schedule(5_ms, [&] { id = f.tracer.begin("work", "t"); });
  f.sim.schedule(12_ms, [&] { f.tracer.end(id); });
  f.sim.run();
  ASSERT_EQ(f.tracer.spans().size(), 1u);
  const SpanRecord& s = f.tracer.spans()[0];
  EXPECT_EQ(s.start, 5_ms);
  EXPECT_EQ(s.end, 12_ms);
  EXPECT_FALSE(s.open);
}

TEST(Tracer, DoubleEndIsNoOp) {
  TracerFixture f;
  const SpanId id = f.tracer.begin("once", "t");
  f.tracer.end(id);
  f.tracer.end(id);  // already closed
  ASSERT_EQ(f.tracer.spans().size(), 1u);
  EXPECT_FALSE(f.tracer.spans()[0].open);
}

TEST(Tracer, KeyedSpanFirstOpenerWins) {
  TracerFixture f;
  EXPECT_TRUE(f.tracer.begin_keyed(7, "agree", "protocol"));
  EXPECT_FALSE(f.tracer.begin_keyed(7, "agree", "protocol"));  // duplicate
  EXPECT_EQ(f.tracer.spans().size(), 1u);
  EXPECT_TRUE(f.tracer.end_keyed(7));
  EXPECT_FALSE(f.tracer.end_keyed(7));  // already closed
  // Keys are single-use: a straggler reaching the stage after the quorum
  // closed it must not re-open the stage as a phantom span.
  EXPECT_FALSE(f.tracer.begin_keyed(7, "agree", "protocol"));
  EXPECT_EQ(f.tracer.spans().size(), 1u);
  // A different key is unaffected.
  EXPECT_TRUE(f.tracer.begin_keyed(8, "agree", "protocol"));
  EXPECT_EQ(f.tracer.spans().size(), 2u);
}

TEST(Tracer, InstantIsZeroDurationClosedSpan) {
  TracerFixture f;
  f.sim.schedule(3_ms, [&] { f.tracer.instant("view_change", "ctrl-0"); });
  f.sim.run();
  ASSERT_EQ(f.tracer.spans().size(), 1u);
  const SpanRecord& s = f.tracer.spans()[0];
  EXPECT_EQ(s.start, s.end);
  EXPECT_EQ(s.start, 3_ms);
  EXPECT_FALSE(s.open);
}

TEST(Tracer, TracksInFirstUseOrder) {
  TracerFixture f;
  f.tracer.instant("a", "zeta");
  f.tracer.instant("b", "alpha");
  f.tracer.instant("c", "zeta");
  ASSERT_EQ(f.tracer.tracks().size(), 2u);
  EXPECT_EQ(f.tracer.tracks()[0], "zeta");  // first use wins, not sorted
  EXPECT_EQ(f.tracer.tracks()[1], "alpha");
}

TEST(Tracer, ClearDropsEverything) {
  TracerFixture f;
  (void)f.tracer.begin("x", "t");
  f.tracer.clear();
  EXPECT_TRUE(f.tracer.spans().empty());
  EXPECT_TRUE(f.tracer.tracks().empty());
  EXPECT_EQ(f.tracer.open_count(), 0u);
}

TEST(ScopedSpan, ClosesOnScopeExit) {
  TracerFixture f;
  {
    ScopedSpan span{f.tracer, "scoped", "t"};
    EXPECT_EQ(f.tracer.open_count(), 1u);
  }
  EXPECT_EQ(f.tracer.open_count(), 0u);
}

// -------------------------------------------------------------- exporters

TEST(Export, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string{"a\x01z"}), "a\\u0001z");
}

TEST(Export, SpansJsonlRoundTrip) {
  TracerFixture f;
  SpanId outer;
  f.sim.schedule(1_ms, [&] {
    outer = f.tracer.begin("pkt_in", "sw-0", {{"request", "42"}, {"src", "0"}});
  });
  f.sim.schedule(2_ms, [&] { f.tracer.instant("accusation", "sw-0", {{"id", "3"}}); });
  f.sim.schedule(9_ms, [&] { f.tracer.end(outer); });
  f.sim.schedule(10_ms, [&] { (void)f.tracer.begin("dangling", "ctrl-1"); });
  f.sim.run();

  std::stringstream buf;
  write_spans_jsonl(f.tracer, buf);
  const auto parsed = parse_spans_jsonl(buf);

  const auto& spans = f.tracer.spans();
  ASSERT_EQ(parsed.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(parsed[i].id, spans[i].id);
    EXPECT_EQ(parsed[i].parent, spans[i].parent);
    EXPECT_EQ(parsed[i].name, spans[i].name);
    EXPECT_EQ(parsed[i].track, spans[i].track);
    EXPECT_EQ(parsed[i].start, spans[i].start);
    EXPECT_EQ(parsed[i].open, spans[i].open);
    EXPECT_EQ(parsed[i].attrs, spans[i].attrs);
    if (!spans[i].open) EXPECT_EQ(parsed[i].end, spans[i].end);
  }
}

TEST(Export, ParseRejectsGarbage) {
  std::stringstream buf{"{\"id\":not-json}\n"};
  EXPECT_THROW((void)parse_spans_jsonl(buf), std::runtime_error);
}

TEST(Export, ChromeTraceShape) {
  TracerFixture f;
  SpanId id;
  f.sim.schedule(1_ms, [&] { id = f.tracer.begin("pkt_in", "sw-0"); });
  f.sim.schedule(4_ms, [&] { f.tracer.end(id); });
  f.sim.schedule(5_ms, [&] { (void)f.tracer.begin("open_span", "ctrl-0"); });
  f.sim.run();

  std::stringstream buf;
  write_chrome_trace(f.tracer, buf);
  const std::string out = buf.str();
  // Valid-ish trace_event JSON: an event array, complete events with
  // microsecond timestamps, and thread-name metadata per track.
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"pkt_in\""), std::string::npos);
  EXPECT_NE(out.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(out.find("\"dur\":3000"), std::string::npos);
  EXPECT_NE(out.find("thread_name"), std::string::npos);
  EXPECT_NE(out.find("sw-0"), std::string::npos);
  // Open spans are exported, tagged as such.
  EXPECT_NE(out.find("\"open\":\"true\""), std::string::npos);
  // Top-level object, closed properly.
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.substr(out.size() - 2), "}\n");
}

TEST(Export, MetricsJsonAndCsvShape) {
  MetricsRegistry reg;
  reg.counter("core.rounds").inc(5);
  reg.gauge("sim.queue_high_water").set(17.0);
  Histogram& h = reg.histogram("net.delay_us", {{"category", "AGREE"}});
  h.record(100.0);
  h.record(200.0);

  std::stringstream json;
  write_metrics_json(reg, json);
  const std::string j = json.str();
  EXPECT_NE(j.find("\"core.rounds\""), std::string::npos);
  EXPECT_NE(j.find("\"value\":5"), std::string::npos);
  EXPECT_NE(j.find("net.delay_us{category=\\\"AGREE\\\"}"), std::string::npos);
  EXPECT_NE(j.find("\"count\":2"), std::string::npos);

  std::stringstream csv;
  write_metrics_csv(reg, csv);
  std::string line;
  ASSERT_TRUE(std::getline(csv, line));
  EXPECT_EQ(line, "series,kind,count,sum,min,max,mean,p50,p90,p99,value");
  std::size_t rows = 0;
  bool saw_labeled = false;
  while (std::getline(csv, line)) {
    if (line.empty()) continue;
    ++rows;
    if (line.find("delay_us") != std::string::npos) {
      saw_labeled = true;
      // RFC 4180: the literal quotes in the label value are doubled inside
      // the quoted field.
      EXPECT_EQ(line.substr(0, line.find(',')),
                "\"net.delay_us{category=\"\"AGREE\"\"}\"");
    }
  }
  EXPECT_TRUE(saw_labeled);
  EXPECT_EQ(rows, reg.size());
}

TEST(Export, DeterministicAcrossIdenticalRuns) {
  // Same schedule, two independent tracers: byte-identical exports.
  auto run_once = [] {
    TracerFixture f;
    for (int i = 0; i < 5; ++i) {
      f.sim.schedule(sim::SimTime::millis(i), [&f, i] {
        const SpanId s = f.tracer.begin("round", "t" + std::to_string(i % 2),
                                        {{"i", std::to_string(i)}});
        f.tracer.end(s);
      });
    }
    f.sim.run();
    std::stringstream chrome;
    std::stringstream jsonl;
    write_chrome_trace(f.tracer, chrome);
    write_spans_jsonl(f.tracer, jsonl);
    return chrome.str() + "\x1e" + jsonl.str();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Export, PathHelpersReportFailure) {
  Tracer t;
  MetricsRegistry reg;
  EXPECT_FALSE(export_chrome_trace(t, "/nonexistent-dir/trace.json"));
  EXPECT_FALSE(export_spans_jsonl(t, "/nonexistent-dir/spans.jsonl"));
  EXPECT_FALSE(export_metrics_json(reg, "/nonexistent-dir/m.json"));
  EXPECT_FALSE(export_metrics_csv(reg, "/nonexistent-dir/m.csv"));
}

TEST(Observatory, EnableBindsClockAndStartsTracer) {
  sim::Simulator sim;
  Observatory obsy;
  EXPECT_FALSE(obsy.tracer.enabled());
  obsy.enable(sim);
  EXPECT_TRUE(obsy.tracer.enabled());
  const SpanId id = obsy.tracer.begin("x", "t");
  EXPECT_TRUE(id.valid());
}

}  // namespace
}  // namespace curb::obs
