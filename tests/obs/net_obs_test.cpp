// Unit tests for curb::obs::net — per-link accounting semantics, the
// Theorem 1 analytic bound, round_complexity extraction/auditing, and the
// deterministic report writers.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "curb/obs/net/complexity.hpp"
#include "curb/obs/net/link_stats.hpp"
#include "curb/obs/net/report.hpp"

namespace curb::obs::net {
namespace {

TEST(LinkStats, AttributesSendsPerLinkAndCategory) {
  LinkStats stats;
  stats.record(0, 1, 100, 0, false, "PKT-IN");
  stats.record(0, 1, 50, 0, false, "PKT-IN");
  stats.record(0, 2, 10, 0, false, "REPLY");

  ASSERT_EQ(stats.links().size(), 2u);
  const LinkEntry& a = stats.links().at({0, 1});
  EXPECT_EQ(a.msgs, 2u);
  EXPECT_EQ(a.bytes, 150u);
  EXPECT_EQ(a.by_category.at("PKT-IN"), 2u);
  EXPECT_EQ(stats.total_msgs(), 3u);
  EXPECT_EQ(stats.total_bytes(), 160u);
  EXPECT_EQ(stats.categories().at("REPLY").msgs, 1u);
}

TEST(LinkStats, DropsCountTowardConservationDupsDoNot) {
  LinkStats stats;
  stats.record(0, 1, 100, 0, true, "AGREE");   // dropped send
  stats.record(0, 1, 100, 2, false, "AGREE");  // send + 2 wire duplicates

  const LinkEntry& link = stats.links().at({0, 1});
  // Conservation mirrors MessageStats: both sends counted, dups separate.
  EXPECT_EQ(link.msgs, 2u);
  EXPECT_EQ(link.dups, 2u);
  EXPECT_EQ(link.drops, 1u);
  EXPECT_EQ(stats.total_msgs(), 2u);
  EXPECT_EQ(stats.total_dups(), 2u);
  EXPECT_EQ(stats.total_drops(), 1u);
  EXPECT_EQ(stats.category_dups("AGREE"), 2u);
  EXPECT_EQ(stats.category_dups("REPLY"), 0u);
}

TEST(LinkStats, ResetZeroesCountersButKeepsKeys) {
  LinkStats stats;
  stats.record(3, 4, 64, 1, false, "DATA");
  stats.reset();
  ASSERT_EQ(stats.links().size(), 1u);
  const LinkEntry& link = stats.links().at({3, 4});
  EXPECT_EQ(link.msgs, 0u);
  EXPECT_EQ(link.bytes, 0u);
  EXPECT_EQ(link.dups, 0u);
  EXPECT_EQ(stats.total_msgs(), 0u);
  EXPECT_EQ(stats.categories().at("DATA").msgs, 0u);
}

TEST(Complexity, AnalyticBoundMatchesFormula) {
  ComplexityParams p;
  p.c = 4;
  p.k = 18;
  p.n = 16;
  p.requests = 68;
  p.blocks = 6;
  const PhasePrediction bound = analytic_bound(p);
  // gmax unset ⇒ g = c = 4.
  EXPECT_EQ(bound.pkt_in, 68u * 4u);
  EXPECT_EQ(bound.intra_pbft, 68u * 24u);
  EXPECT_EQ(bound.agree, 68u * 16u);
  EXPECT_EQ(bound.final_pbft, 6u * 24u);
  EXPECT_EQ(bound.final_agree, 6u * 4u * 15u);
  EXPECT_EQ(bound.reply, 68u * 4u);
  EXPECT_EQ(bound.total, bound.pkt_in + bound.intra_pbft + bound.agree +
                             bound.final_pbft + bound.final_agree + bound.reply);
}

TEST(Complexity, GmaxWidensOnlyRequestScaledPhases) {
  ComplexityParams p;
  p.c = 4;
  p.gmax = 7;
  p.n = 16;
  p.requests = 10;
  p.blocks = 2;
  const PhasePrediction bound = analytic_bound(p);
  EXPECT_EQ(bound.pkt_in, 10u * 7u);
  EXPECT_EQ(bound.intra_pbft, 10u * 2u * 7u * 6u);
  EXPECT_EQ(bound.agree, 10u * 7u * 4u);
  EXPECT_EQ(bound.reply, 10u * 7u);
  // The final committee is always exactly c members.
  EXPECT_EQ(bound.final_pbft, 2u * 24u);
  EXPECT_EQ(bound.final_agree, 2u * 4u * 15u);
}

TEST(Complexity, Theorem1Formula) {
  EXPECT_EQ(theorem1_messages(4, 18, 16), 18u * 16u + 16u + 2u * 4u * 16u);
}

SpanRecord round_span(std::uint64_t id, const Attrs& attrs) {
  SpanRecord s;
  s.id = id;
  s.name = "round_complexity";
  s.track = "net";
  s.open = false;
  s.attrs = attrs;
  return s;
}

Attrs clean_round_attrs() {
  return {{"round", "1"},   {"kind", "pkt_in"}, {"engine", "pbft"},
          {"c", "4"},       {"gmax", "6"},      {"k", "3"},
          {"n", "8"},       {"requests", "10"}, {"blocks", "2"},
          {"m:PKT-IN", "50"},      {"m:intra-pbft", "400"},
          {"m:AGREE", "180"},      {"m:final-pbft", "48"},
          {"m:FINAL-AGREE", "56"}, {"m:REPLY", "50"},
          {"m:DATA", "5"},  {"total", "789"},   {"dup", "0"}};
}

TEST(Complexity, ExtractAuditsCleanRoundWithinBound) {
  const std::vector<SpanRecord> spans = {round_span(7, clean_round_attrs())};
  const std::vector<RoundComplexity> rounds = extract_round_complexity(spans);
  ASSERT_EQ(rounds.size(), 1u);
  const RoundComplexity& rc = rounds[0];
  EXPECT_EQ(rc.span_id, 7u);
  EXPECT_EQ(rc.round, 1u);
  EXPECT_EQ(rc.params.gmax, 6u);
  EXPECT_EQ(rc.params.group_bound(), 6u);
  EXPECT_TRUE(rc.bounded);
  // Control-plane total excludes the DATA wire traffic.
  EXPECT_EQ(rc.measured_total, 789u);
  EXPECT_EQ(rc.control_total, 784u);
  EXPECT_EQ(rc.phase_measured.agree, 180u);
  EXPECT_FALSE(rc.exceeds);
  EXPECT_GT(rc.ratio(), 0.0);
  EXPECT_LE(rc.ratio(), 1.0);
}

TEST(Complexity, PhaseOverrunFlagsEvenWithTotalSlack) {
  Attrs attrs = clean_round_attrs();
  for (auto& [key, value] : attrs) {
    // Inflate AGREE past its phase bound (10·6·4 = 240) while the total
    // stays far below the summed bound — only the per-phase check catches
    // this, which is the duplicate-AGREE fault signature.
    if (key == "m:AGREE") value = "250";
    if (key == "total") value = "859";
    if (key == "dup") value = "70";
  }
  const std::vector<RoundComplexity> rounds =
      extract_round_complexity({round_span(1, attrs)});
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_TRUE(rounds[0].exceeds);
  EXPECT_EQ(rounds[0].dup_wire, 70u);
  EXPECT_LT(rounds[0].control_total, rounds[0].bound.total);
}

TEST(Complexity, ReassignmentRoundsAreReportedNotBounded) {
  Attrs attrs = clean_round_attrs();
  for (auto& [key, value] : attrs) {
    if (key == "kind") value = "reass";
    if (key == "m:AGREE") value = "99999";
  }
  const std::vector<RoundComplexity> rounds =
      extract_round_complexity({round_span(1, attrs)});
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_FALSE(rounds[0].bounded);
  EXPECT_FALSE(rounds[0].exceeds);
}

TEST(Complexity, SkipsSpansWithMissingAttrs) {
  Attrs attrs = {{"kind", "pkt_in"}, {"round", "1"}};  // no c/k/n/...
  const std::vector<RoundComplexity> rounds =
      extract_round_complexity({round_span(1, attrs)});
  EXPECT_TRUE(rounds.empty());
}

TEST(Complexity, LedgerAccumulatesPerCategoryKey) {
  MsgLedger ledger;
  ledger.record("PKT-IN", "3:1", 4, 400);
  ledger.record("PKT-IN", "3:1", 4, 400);
  ledger.record("AGREE", "deadbeef", 16, 1600);
  ASSERT_EQ(ledger.entries().size(), 2u);
  EXPECT_EQ(ledger.entries().at({"PKT-IN", "3:1"}).msgs, 8u);
  EXPECT_EQ(ledger.total_msgs(), 24u);
}

TEST(Report, LinkMatrixWritersAreDeterministic) {
  LinkStats stats;
  stats.record(0, 1, 1000, 0, false, "PKT-IN");
  stats.record(1, 0, 500, 1, false, "REPLY");
  stats.record(0, 2, 200, 0, true, "AGREE");
  const NodeNameFn name = [](std::uint32_t idx) {
    return "node" + std::to_string(idx);
  };
  LinkReportOptions options;
  options.elapsed_s = 2.0;

  std::ostringstream json_a, json_b, csv, dot;
  write_link_matrix_json(stats, name, options, json_a);
  write_link_matrix_json(stats, name, options, json_b);
  EXPECT_EQ(json_a.str(), json_b.str());
  EXPECT_NE(json_a.str().find("\"src_name\":\"node0\""), std::string::npos);
  EXPECT_NE(json_a.str().find("\"drops\":1"), std::string::npos);

  write_link_matrix_csv(stats, name, options, csv);
  EXPECT_NE(csv.str().find("src,src_name,dst,dst_name"), std::string::npos);
  EXPECT_NE(csv.str().find("node1"), std::string::npos);

  write_link_dot(stats, name, options, dot);
  EXPECT_NE(dot.str().find("digraph curb_links"), std::string::npos);
  EXPECT_NE(dot.str().find("node0"), std::string::npos);
}

TEST(Report, LedgerJsonlRoundTrips) {
  MsgLedger ledger;
  ledger.record("AGREE", "cafe0123", 16, 1600);
  ledger.record("PKT-IN", "2:1", 6, 600);
  std::ostringstream out;
  write_ledger_jsonl(ledger, out);

  std::istringstream in{out.str()};
  const std::vector<LedgerRow> rows = parse_ledger_jsonl(in);
  ASSERT_EQ(rows.size(), 2u);
  // Map ordering: AGREE before PKT-IN.
  EXPECT_EQ(rows[0].category, "AGREE");
  EXPECT_EQ(rows[0].key, "cafe0123");
  EXPECT_EQ(rows[0].msgs, 16u);
  EXPECT_EQ(rows[0].bytes, 1600u);
  EXPECT_EQ(rows[1].category, "PKT-IN");
  EXPECT_EQ(rows[1].msgs, 6u);
}

TEST(Report, ComplexityWritersCoverCleanAndExceedingRounds) {
  Attrs clean = clean_round_attrs();
  Attrs bad = clean_round_attrs();
  for (auto& [key, value] : bad) {
    if (key == "round") value = "2";
    if (key == "m:AGREE") value = "250";
  }
  const std::vector<RoundComplexity> rounds =
      extract_round_complexity({round_span(1, clean), round_span(2, bad)});
  ASSERT_EQ(rounds.size(), 2u);

  std::ostringstream text;
  write_complexity_text(rounds, text);
  EXPECT_NE(text.str().find("EXCEEDS"), std::string::npos);
  EXPECT_NE(text.str().find("AGREE 250 > 240 phase bound"), std::string::npos);

  std::ostringstream json_a, json_b;
  write_complexity_json(rounds, json_a);
  write_complexity_json(rounds, json_b);
  EXPECT_EQ(json_a.str(), json_b.str());
  EXPECT_NE(json_a.str().find("\"gmax\":6"), std::string::npos);
  EXPECT_NE(json_a.str().find("\"violations\":1"), std::string::npos);
}

}  // namespace
}  // namespace curb::obs::net
