#include <gtest/gtest.h>

#include <deque>
#include <sstream>
#include <string>

#include "curb/obs/observatory.hpp"
#include "curb/obs/slo.hpp"
#include "curb/obs/timeseries.hpp"

namespace curb::obs {
namespace {

// ----------------------------------------------------------------- grammar

TEST(SloGrammar, ParsesFullRule) {
  const SloRule rule = SloRule::parse("p99(core.request_latency_us) < 80ms over 5");
  EXPECT_EQ(rule.agg, SloAgg::kP99);
  EXPECT_EQ(rule.series, "core.request_latency_us");
  EXPECT_EQ(rule.op, SloOp::kLt);
  EXPECT_DOUBLE_EQ(rule.limit, 80'000.0);  // ms -> us
  EXPECT_EQ(rule.over, 5u);
}

TEST(SloGrammar, ParsesLabelledSeriesAndDefaults) {
  const SloRule rule =
      SloRule::parse("rate(net.dropped{category=\"REPLY\",reason=\"fault\"}) == 0");
  EXPECT_EQ(rule.agg, SloAgg::kRate);
  EXPECT_EQ(rule.series, "net.dropped{category=\"REPLY\",reason=\"fault\"}");
  EXPECT_EQ(rule.op, SloOp::kEq);
  EXPECT_DOUBLE_EQ(rule.limit, 0.0);
  EXPECT_EQ(rule.over, 1u);
}

TEST(SloGrammar, ParsesUnitsAndOperators) {
  EXPECT_DOUBLE_EQ(SloRule::parse("mean(x) <= 2s").limit, 2e6);
  EXPECT_DOUBLE_EQ(SloRule::parse("max(x) >= 15us").limit, 15.0);
  EXPECT_DOUBLE_EQ(SloRule::parse("gauge(x) != 1.5").limit, 1.5);
  EXPECT_EQ(SloRule::parse("count(x) > 3").op, SloOp::kGt);
  EXPECT_EQ(SloRule::parse("sum(x) < -2.5").limit, -2.5);
}

TEST(SloGrammar, RuleSetSplitsOnSemicolons) {
  const SloRuleSet set =
      SloRuleSet::parse("rate(a) > 0 ; p50(b) < 10ms over 2;; gauge(c) == 4");
  ASSERT_EQ(set.rules.size(), 3u);
  EXPECT_EQ(set.rules[0].series, "a");
  EXPECT_EQ(set.rules[1].over, 2u);
  EXPECT_EQ(set.rules[2].agg, SloAgg::kGauge);
  EXPECT_TRUE(SloRuleSet::parse("").rules.empty());
}

TEST(SloGrammar, CanonicalTextRoundTrips) {
  const char* texts[] = {
      "p99(core.request_latency_us) < 80000 over 5",
      "rate(net.dropped{category=\"REPLY\"}) == 0",
      "gauge(sim.queue_high_water) <= 20000",
  };
  for (const char* text : texts) {
    EXPECT_EQ(SloRule::parse(text).text(), text);
    EXPECT_EQ(SloRule::parse(SloRule::parse(text).text()).text(), text);
  }
}

TEST(SloGrammar, RejectsMalformedRules) {
  EXPECT_THROW(SloRule::parse(""), SloError);
  EXPECT_THROW(SloRule::parse("p42(x) < 1"), SloError);
  EXPECT_THROW(SloRule::parse("p99(x < 1"), SloError);
  EXPECT_THROW(SloRule::parse("p99() < 1"), SloError);
  EXPECT_THROW(SloRule::parse("p99(x) ~ 1"), SloError);
  EXPECT_THROW(SloRule::parse("p99(x) <"), SloError);
  EXPECT_THROW(SloRule::parse("p99(x) < 1 over 0"), SloError);
  EXPECT_THROW(SloRule::parse("p99(x) < 1 over 1.5"), SloError);
  EXPECT_THROW(SloRule::parse("p99(x) < 1 junk"), SloError);
  // "summary" must not lex as the aggregation "sum".
  EXPECT_THROW(SloRule::parse("summary(x) < 1"), SloError);
}

// -------------------------------------------------------------- evaluation

TsWindow window_with(std::uint64_t index,
                     std::vector<std::pair<std::string, TsValue>> series) {
  TsWindow w;
  w.index = index;
  w.start = sim::SimTime::millis(static_cast<std::int64_t>(index) * 100);
  w.end = w.start + sim::SimTime::millis(100);
  std::sort(series.begin(), series.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.series = std::move(series);
  return w;
}

TsValue rate(double v) {
  TsValue value;
  value.kind = TsValue::Kind::kRate;
  value.value = v;
  return value;
}

TsValue gauge(double v) {
  TsValue value;
  value.kind = TsValue::Kind::kGauge;
  value.value = v;
  return value;
}

TsValue hist(std::uint64_t count, double sum, double p50, double p99) {
  TsValue value;
  value.kind = TsValue::Kind::kHist;
  value.count = count;
  value.sum = sum;
  value.p50 = p50;
  value.p90 = p99;
  value.p99 = p99;
  return value;
}

TEST(SloEvaluate, RateSumsOverTrailingWindowsWithMissingAsZero) {
  std::deque<TsWindow> windows;
  windows.push_back(window_with(0, {{"x", rate(3)}}));
  windows.push_back(window_with(1, {}));
  windows.push_back(window_with(2, {{"x", rate(5)}}));

  EXPECT_DOUBLE_EQ(*evaluate_rule(SloRule::parse("rate(x) > 0 over 3"), windows), 8.0);
  EXPECT_DOUBLE_EQ(*evaluate_rule(SloRule::parse("rate(x) > 0 over 2"), windows), 5.0);
  // Newest window only: the missing middle window contributes nothing.
  EXPECT_DOUBLE_EQ(*evaluate_rule(SloRule::parse("rate(x) > 0"), windows), 5.0);
  // Absent series still totals zero (rate()==0 watchdogs must evaluate).
  EXPECT_DOUBLE_EQ(*evaluate_rule(SloRule::parse("rate(y) == 0"), windows), 0.0);
}

TEST(SloEvaluate, PercentileTakesWorstWindow) {
  std::deque<TsWindow> windows;
  windows.push_back(window_with(0, {{"lat", hist(10, 1000, 90, 400)}}));
  windows.push_back(window_with(1, {{"lat", hist(10, 1000, 120, 900)}}));
  windows.push_back(window_with(2, {{"lat", hist(10, 1000, 80, 300)}}));

  EXPECT_DOUBLE_EQ(*evaluate_rule(SloRule::parse("p99(lat) < 1s over 3"), windows),
                   900.0);
  EXPECT_DOUBLE_EQ(*evaluate_rule(SloRule::parse("p50(lat) < 1s over 3"), windows),
                   120.0);
  EXPECT_DOUBLE_EQ(*evaluate_rule(SloRule::parse("p99(lat) < 1s"), windows), 300.0);
  EXPECT_DOUBLE_EQ(*evaluate_rule(SloRule::parse("max(lat) < 1s over 2"), windows),
                   900.0);
}

TEST(SloEvaluate, MeanPoolsHistogramDeltas) {
  std::deque<TsWindow> windows;
  windows.push_back(window_with(0, {{"lat", hist(2, 200, 0, 0)}}));
  windows.push_back(window_with(1, {{"lat", hist(8, 1800, 0, 0)}}));
  // (200 + 1800) / (2 + 8), not the mean of per-window means.
  EXPECT_DOUBLE_EQ(*evaluate_rule(SloRule::parse("mean(lat) < 1s over 2"), windows),
                   200.0);
}

TEST(SloEvaluate, GaugeTakesLatestSample) {
  std::deque<TsWindow> windows;
  windows.push_back(window_with(0, {{"g", gauge(18)}}));
  windows.push_back(window_with(1, {{"g", gauge(17)}}));
  EXPECT_DOUBLE_EQ(*evaluate_rule(SloRule::parse("gauge(g) == 18 over 2"), windows),
                   17.0);
}

TEST(SloEvaluate, NoDataIsNoVerdict) {
  std::deque<TsWindow> windows;
  EXPECT_FALSE(evaluate_rule(SloRule::parse("p99(lat) < 1s"), windows).has_value());
  windows.push_back(window_with(0, {}));
  EXPECT_FALSE(evaluate_rule(SloRule::parse("p99(lat) < 1s"), windows).has_value());
  EXPECT_FALSE(evaluate_rule(SloRule::parse("gauge(g) == 1"), windows).has_value());
}

TEST(SloEvaluate, CountWindowsClampedToAvailable) {
  std::deque<TsWindow> windows;
  windows.push_back(window_with(0, {{"x", rate(2)}}));
  EXPECT_DOUBLE_EQ(*evaluate_rule(SloRule::parse("rate(x) > 0 over 10"), windows),
                   2.0);
}

// ------------------------------------------------------------------ engine

TEST(SloEngine, RecordsBreachesAndEmitsAlerts) {
  Observatory obs;
  sim::Simulator sim{1};
  obs.enable(sim);

  SloEngine engine{SloRuleSet::parse("rate(err) == 0; gauge(depth) < 10")};
  std::deque<TsWindow> windows;

  windows.push_back(window_with(0, {{"depth", gauge(5)}}));
  engine.on_window(&obs, windows);
  EXPECT_FALSE(engine.breached());

  windows.push_back(window_with(1, {{"err", rate(3)}, {"depth", gauge(12)}}));
  engine.on_window(&obs, windows);
  ASSERT_EQ(engine.breaches().size(), 2u);
  EXPECT_TRUE(engine.breached());
  EXPECT_EQ(engine.breaches()[0].window, 1u);
  EXPECT_DOUBLE_EQ(engine.breaches()[0].observed, 3.0);
  EXPECT_DOUBLE_EQ(engine.breaches()[1].observed, 12.0);

  // Alerts land in the metrics registry (and the trace stream).
  EXPECT_EQ(obs.metrics.counter("slo.breaches", {{"rule", "rate(err) == 0"}}).value(),
            1u);

  std::ostringstream json;
  engine.write_report_json(json);
  EXPECT_NE(json.str().find("\"total_breaches\":2"), std::string::npos);
  EXPECT_NE(json.str().find("\"worst\":12"), std::string::npos);

  std::ostringstream text;
  engine.write_report_text(text);
  EXPECT_NE(text.str().find("rate(err) == 0 violated"), std::string::npos);
}

TEST(SloEngine, NullObservatoryIsOfflineReplay) {
  SloEngine engine{SloRuleSet::parse("rate(err) == 0")};
  std::deque<TsWindow> windows;
  windows.push_back(window_with(0, {{"err", rate(1)}}));
  engine.on_window(nullptr, windows);
  EXPECT_EQ(engine.breaches().size(), 1u);
}

}  // namespace
}  // namespace curb::obs
