#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "curb/obs/analysis.hpp"
#include "curb/obs/report.hpp"

namespace curb::obs {
namespace {

SpanRecord span(std::uint64_t id, std::uint64_t parent, std::string name,
                std::string track, std::int64_t start_us, std::int64_t end_us,
                bool open = false, Attrs attrs = {}) {
  SpanRecord s;
  s.id = id;
  s.parent = parent;
  s.name = std::move(name);
  s.track = std::move(track);
  s.start = sim::SimTime::micros(start_us);
  s.end = sim::SimTime::micros(end_us);
  s.open = open;
  s.attrs = std::move(attrs);
  return s;
}

/// One complete, well-formed transaction through every protocol stage.
std::vector<SpanRecord> clean_chain() {
  return {
      span(1, 0, "pkt_in", "sw-3", 0, 100000, false,
           {{"request", "7"}, {"switch", "3"}}),
      span(2, 1, "reply_quorum", "sw-3", 80000, 100000, false,
           {{"request", "7"}, {"switch", "3"}}),
      span(3, 0, "intra_pbft", "ctrl-0", 10000, 30000, false,
           {{"seq", "1"}, {"view", "0"}, {"digest", "aa"}}),
      span(4, 0, "agree", "protocol", 30000, 40000, false,
           {{"instance", "5"}, {"digest", "aa"}, {"txns", "3:7"}}),
      span(5, 0, "block_commit", "protocol", 50000, 70000, false,
           {{"height", "1"}, {"digest", "bb"}, {"txns", "3:7"}}),
      span(6, 0, "final_pbft", "ctrl-1", 50000, 65000, false,
           {{"seq", "1"}, {"view", "0"}, {"digest", "bb"}}),
  };
}

TEST(LatencyStats, NearestRankPercentiles) {
  std::vector<std::int64_t> samples;
  for (std::int64_t v = 100; v >= 1; --v) samples.push_back(v);
  const LatencyStats s = make_latency_stats(samples);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min_us, 1);
  EXPECT_EQ(s.max_us, 100);
  EXPECT_EQ(s.p50_us, 50);
  EXPECT_EQ(s.p90_us, 90);
  EXPECT_EQ(s.p99_us, 99);
  EXPECT_DOUBLE_EQ(s.mean_us(), 50.5);
}

TEST(LatencyStats, EmptyIsAllZero) {
  const LatencyStats s = make_latency_stats({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99_us, 0);
  EXPECT_DOUBLE_EQ(s.mean_us(), 0.0);
}

TEST(TraceAnalysis, ReconstructsFullCausalChain) {
  const TraceAnalysis analysis{clean_chain()};
  ASSERT_EQ(analysis.transactions().size(), 1u);
  const TransactionTrace& txn = analysis.transactions().front();
  EXPECT_EQ(txn.switch_id, 3u);
  EXPECT_EQ(txn.request_id, 7u);
  EXPECT_TRUE(txn.complete);
  EXPECT_EQ(txn.intra_span, 3u);
  EXPECT_EQ(txn.agree_span, 4u);
  EXPECT_EQ(txn.block_span, 5u);
  EXPECT_EQ(txn.final_span, 6u);
  EXPECT_EQ(txn.reply_span, 2u);
  ASSERT_TRUE(txn.has_instance);
  EXPECT_EQ(txn.instance, 5u);
  EXPECT_TRUE(analysis.findings().empty());
}

TEST(TraceAnalysis, SegmentsPartitionEndToEnd) {
  const TraceAnalysis analysis{clean_chain()};
  const TransactionTrace& txn = analysis.transactions().front();
  ASSERT_EQ(txn.segments.size(), 6u);
  // Contiguous cover of [start, end] in protocol order.
  std::int64_t cursor = txn.start_us;
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < txn.segments.size(); ++i) {
    EXPECT_EQ(txn.segments[i].phase, kPhaseOrder[i]);
    EXPECT_EQ(txn.segments[i].start_us, cursor);
    cursor = txn.segments[i].end_us;
    sum += txn.segments[i].duration_us();
  }
  EXPECT_EQ(cursor, txn.end_us);
  EXPECT_EQ(sum, txn.latency_us());
  EXPECT_EQ(txn.overlap_us, 0);
  // The known milestone walk: 10ms dispatch, 20ms intra, 10ms agree,
  // 10ms block wait, 20ms final, 30ms reply.
  EXPECT_EQ(txn.segments[0].duration_us(), 10000);
  EXPECT_EQ(txn.segments[1].duration_us(), 20000);
  EXPECT_EQ(txn.segments[2].duration_us(), 10000);
  EXPECT_EQ(txn.segments[3].duration_us(), 10000);
  EXPECT_EQ(txn.segments[4].duration_us(), 20000);
  EXPECT_EQ(txn.segments[5].duration_us(), 30000);
}

TEST(TraceAnalysis, ClampsOverlappingMilestones) {
  auto spans = clean_chain();
  spans[3].start = sim::SimTime::micros(5000);  // agree "opens" before intra starts
  const TraceAnalysis analysis{spans};
  const TransactionTrace& txn = analysis.transactions().front();
  EXPECT_EQ(txn.overlap_us, 5000);
  std::int64_t sum = 0;
  for (const Segment& seg : txn.segments) {
    EXPECT_GE(seg.duration_us(), 0);
    sum += seg.duration_us();
  }
  EXPECT_EQ(sum, txn.latency_us());  // clamping preserves the partition
}

TEST(TraceAnalysis, MissingConsensusSlotsFoldIntoNextPhase) {
  // HotStuff-engine traces have no intra/final slot spans; the walk must
  // still cover end-to-end via the stages that are present.
  std::vector<SpanRecord> spans{
      span(1, 0, "pkt_in", "sw-0", 0, 50000, false,
           {{"request", "1"}, {"switch", "0"}}),
      span(2, 1, "reply_quorum", "sw-0", 45000, 50000, false,
           {{"request", "1"}, {"switch", "0"}}),
      span(3, 0, "agree", "protocol", 20000, 25000, false,
           {{"instance", "2"}, {"digest", "cc"}, {"txns", "0:1"}}),
      span(4, 0, "block_commit", "protocol", 30000, 40000, false,
           {{"height", "1"}, {"digest", "dd"}, {"txns", "0:1"}}),
  };
  const TraceAnalysis analysis{spans};
  const TransactionTrace& txn = analysis.transactions().front();
  EXPECT_EQ(txn.intra_span, 0u);
  std::int64_t sum = 0;
  for (const Segment& seg : txn.segments) sum += seg.duration_us();
  EXPECT_EQ(sum, txn.latency_us());
  EXPECT_TRUE(analysis.findings().empty());
}

TEST(Anomalies, UnservedRequest) {
  std::vector<SpanRecord> spans{
      span(1, 0, "pkt_in", "sw-2", 0, 0, true, {{"request", "9"}, {"switch", "2"}}),
  };
  const TraceAnalysis analysis{spans};
  ASSERT_EQ(analysis.findings().size(), 1u);
  EXPECT_EQ(analysis.findings()[0].detector, "unserved_request");
  EXPECT_EQ(analysis.findings()[0].severity, Finding::Severity::kError);
  EXPECT_EQ(analysis.findings()[0].spans, std::vector<std::uint64_t>{1});
  EXPECT_FALSE(analysis.transactions().front().complete);
}

TEST(Anomalies, ShortReplyQuorum) {
  auto spans = clean_chain();
  spans[0].open = true;  // root never closed...
  spans[1].open = true;  // ...because the reply quorum never filled
  const TraceAnalysis analysis{spans};
  bool found = false;
  for (const Finding& f : analysis.findings()) {
    if (f.detector == "short_reply_quorum") {
      found = true;
      EXPECT_EQ(f.severity, Finding::Severity::kError);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Anomalies, StalledRound) {
  auto spans = clean_chain();
  spans[2].open = true;  // intra slot accepted, never executed
  const TraceAnalysis analysis{spans};
  bool found = false;
  for (const Finding& f : analysis.findings()) {
    if (f.detector == "stalled_round") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Anomalies, OrphanedAndUnsealedAgree) {
  std::vector<SpanRecord> spans{
      span(1, 0, "agree", "protocol", 0, 0, true,
           {{"instance", "1"}, {"digest", "aa"}, {"txns", "0:1"}}),
      span(2, 0, "agree", "protocol", 0, 5000, false,
           {{"instance", "2"}, {"digest", "bb"}, {"txns", "0:2"}}),
  };
  const TraceAnalysis analysis{spans};
  ASSERT_EQ(analysis.findings().size(), 2u);
  EXPECT_EQ(analysis.findings()[0].detector, "orphaned_agree");
  EXPECT_EQ(analysis.findings()[0].severity, Finding::Severity::kError);
  EXPECT_EQ(analysis.findings()[1].detector, "unsealed_agree");
  EXPECT_EQ(analysis.findings()[1].severity, Finding::Severity::kWarning);
}

TEST(Anomalies, TimeoutAndViewChangeInstants) {
  std::vector<SpanRecord> spans{
      span(1, 0, "intra_pbft.timeout", "ctrl-0", 500000, 500000, false,
           {{"seq", "3"}}),
      span(2, 0, "intra_pbft.view_change", "ctrl-0", 600000, 600000, false,
           {{"view", "1"}}),
  };
  const TraceAnalysis analysis{spans};
  ASSERT_EQ(analysis.findings().size(), 2u);
  EXPECT_EQ(analysis.findings()[0].detector, "consensus_timeout");
  EXPECT_EQ(analysis.findings()[1].detector, "view_change");
  for (const Finding& f : analysis.findings()) {
    EXPECT_EQ(f.severity, Finding::Severity::kWarning);
  }
}

TEST(Anomalies, PhaseOrderViolation) {
  auto spans = clean_chain();
  spans[1].end = sim::SimTime::micros(120000);  // reply outlives its pkt_in
  const TraceAnalysis analysis{spans};
  bool found = false;
  for (const Finding& f : analysis.findings()) {
    if (f.detector == "phase_order_violation") {
      found = true;
      EXPECT_EQ(f.spans.size(), 2u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Anomalies, DanglingParent) {
  std::vector<SpanRecord> spans{
      span(7, 42, "reply_quorum", "sw-0", 0, 1000, false, {{"request", "1"}}),
  };
  const TraceAnalysis analysis{spans};
  ASSERT_EQ(analysis.findings().size(), 1u);
  EXPECT_EQ(analysis.findings()[0].detector, "dangling_parent");
}

TEST(Anomalies, MissingReplyQuorumOnCompleteTransaction) {
  auto spans = clean_chain();
  spans.erase(spans.begin() + 1);  // drop the reply_quorum child
  const TraceAnalysis analysis{spans};
  ASSERT_EQ(analysis.findings().size(), 1u);
  EXPECT_EQ(analysis.findings()[0].detector, "missing_reply_quorum");
  EXPECT_EQ(analysis.findings()[0].severity, Finding::Severity::kWarning);
}

TEST(Anomalies, OtherOpenSpanIsWarning) {
  std::vector<SpanRecord> spans{
      span(1, 0, "op_solve", "op", 0, 0, true, {}),
  };
  const TraceAnalysis analysis{spans};
  ASSERT_EQ(analysis.findings().size(), 1u);
  EXPECT_EQ(analysis.findings()[0].detector, "open_span");
  EXPECT_EQ(analysis.findings()[0].severity, Finding::Severity::kWarning);
}

TEST(Report, JsonIsDeterministic) {
  const TraceAnalysis a{clean_chain()};
  const TraceAnalysis b{clean_chain()};
  std::ostringstream ja;
  std::ostringstream jb;
  write_report_json(a, ja);
  write_report_json(b, jb);
  EXPECT_FALSE(ja.str().empty());
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(Diff, IdenticalRunsShowNoRegression) {
  const TraceAnalysis a{clean_chain()};
  const TraceAnalysis b{clean_chain()};
  const DiffResult diff = diff_analyses(a, b);
  EXPECT_EQ(diff.regressions(), 0u);
  ASSERT_FALSE(diff.entries.empty());
  EXPECT_EQ(diff.entries.front().metric, "e2e");
  EXPECT_DOUBLE_EQ(diff.entries.front().delta_pct, 0.0);
}

TEST(Diff, FlagsSlowdownAboveThreshold) {
  auto slow = clean_chain();
  // Stretch the reply phase by 50 ms: e2e and reply regress, others don't.
  slow[0].end = sim::SimTime::micros(150000);
  slow[1].end = sim::SimTime::micros(150000);
  const TraceAnalysis base{clean_chain()};
  const TraceAnalysis cand{slow};
  const DiffResult diff = diff_analyses(base, cand);
  EXPECT_GT(diff.regressions(), 0u);
  for (const DiffEntry& e : diff.entries) {
    if (e.metric == "e2e" || e.metric == "reply") {
      EXPECT_TRUE(e.regression) << e.metric;
    } else {
      EXPECT_FALSE(e.regression) << e.metric;
    }
  }
}

}  // namespace
}  // namespace curb::obs
