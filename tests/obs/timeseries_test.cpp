#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "curb/obs/observatory.hpp"
#include "curb/obs/timeseries.hpp"
#include "curb/sim/simulator.hpp"
#include "curb/sim/time.hpp"

namespace curb::obs {
namespace {

using namespace curb::sim::literals;

class TimeseriesTest : public ::testing::Test {
 protected:
  sim::Simulator sim{7};
  Observatory obs;

  TsCollector make(sim::SimTime window, std::size_t retention = 64) {
    obs.enable(sim);
    return TsCollector{obs, sim, TsOptions{window, retention}};
  }
};

TEST_F(TimeseriesTest, CountersBecomePerWindowRates) {
  TsCollector ts = make(100_ms);
  Counter& reqs = obs.metrics.counter("test.requests");
  ts.start();

  sim.schedule(30_ms, [&] { reqs.inc(3); });
  sim.schedule(250_ms, [&] { reqs.inc(5); });
  sim.run_until(300_ms);

  ASSERT_EQ(ts.windows_closed(), 3u);
  const auto& w = ts.windows();
  const TsValue* v0 = w[0].find("test.requests");
  ASSERT_NE(v0, nullptr);
  EXPECT_EQ(v0->kind, TsValue::Kind::kRate);
  EXPECT_DOUBLE_EQ(v0->value, 3.0);
  // Window 1 saw no increments: the series is absent, not zero.
  EXPECT_EQ(w[1].find("test.requests"), nullptr);
  const TsValue* v2 = w[2].find("test.requests");
  ASSERT_NE(v2, nullptr);
  EXPECT_DOUBLE_EQ(v2->value, 5.0);
}

TEST_F(TimeseriesTest, GaugesSampledEveryWindow) {
  TsCollector ts = make(100_ms);
  Gauge& depth = obs.metrics.gauge("test.depth");
  depth.set(4.0);
  ts.start();

  sim.schedule(150_ms, [&] { depth.set(9.0); });
  sim.run_until(300_ms);

  ASSERT_EQ(ts.windows_closed(), 3u);
  for (const auto& window : ts.windows()) {
    ASSERT_NE(window.find("test.depth"), nullptr) << "w=" << window.index;
  }
  EXPECT_DOUBLE_EQ(ts.windows()[0].find("test.depth")->value, 4.0);
  EXPECT_DOUBLE_EQ(ts.windows()[1].find("test.depth")->value, 9.0);
  EXPECT_DOUBLE_EQ(ts.windows()[2].find("test.depth")->value, 9.0);
}

TEST_F(TimeseriesTest, HistogramWindowStatsComeFromDeltas) {
  TsCollector ts = make(100_ms);
  Histogram& lat = obs.metrics.histogram("test.latency_us");
  ts.start();

  sim.schedule(10_ms, [&] {
    lat.record(100.0);
    lat.record(200.0);
  });
  sim.schedule(110_ms, [&] {
    for (int i = 0; i < 100; ++i) lat.record(1000.0);
  });
  sim.run_until(200_ms);

  ASSERT_EQ(ts.windows_closed(), 2u);
  const TsValue* v0 = ts.windows()[0].find("test.latency_us");
  ASSERT_NE(v0, nullptr);
  EXPECT_EQ(v0->kind, TsValue::Kind::kHist);
  EXPECT_EQ(v0->count, 2u);
  EXPECT_DOUBLE_EQ(v0->sum, 300.0);

  // Window 1's stats reflect only its own 100 samples at ~1000, not the
  // cumulative distribution (which would drag the percentiles down).
  const TsValue* v1 = ts.windows()[1].find("test.latency_us");
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->count, 100u);
  EXPECT_DOUBLE_EQ(v1->sum, 100'000.0);
  EXPECT_GT(v1->p50, 500.0);
  EXPECT_LE(v1->p99, 1024.0);  // containing bucket's upper bound
}

TEST_F(TimeseriesTest, EmptyWindowsStillClose) {
  TsCollector ts = make(50_ms);
  ts.start();
  sim.run_until(250_ms);
  EXPECT_EQ(ts.windows_closed(), 5u);
  for (const auto& window : ts.windows()) {
    EXPECT_TRUE(window.series.empty());
    EXPECT_FALSE(window.partial);
  }
}

TEST_F(TimeseriesTest, EventExactlyOnBoundaryLandsInFollowingWindow) {
  TsCollector ts = make(100_ms);
  Counter& c = obs.metrics.counter("test.edge");
  ts.start();

  // The tick for t=100ms was scheduled at t=0; an event scheduled later for
  // the same instant runs after it, so the increment belongs to window 1.
  sim.schedule(100_ms, [&] { c.inc(); });
  sim.run_until(200_ms);

  ASSERT_EQ(ts.windows_closed(), 2u);
  EXPECT_EQ(ts.windows()[0].find("test.edge"), nullptr);
  const TsValue* v1 = ts.windows()[1].find("test.edge");
  ASSERT_NE(v1, nullptr);
  EXPECT_DOUBLE_EQ(v1->value, 1.0);
}

TEST_F(TimeseriesTest, FinalizeClosesPartialWindow) {
  TsCollector ts = make(100_ms);
  Counter& c = obs.metrics.counter("test.tail");
  ts.start();
  sim.schedule(130_ms, [&] { c.inc(7); });
  sim.run_until(130_ms);
  ts.finalize();

  ASSERT_EQ(ts.windows_closed(), 2u);
  const TsWindow& tail = ts.windows().back();
  EXPECT_TRUE(tail.partial);
  EXPECT_EQ(tail.start, sim::SimTime::millis(100));
  EXPECT_EQ(tail.end, sim::SimTime::millis(130));
  const TsValue* v = tail.find("test.tail");
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->value, 7.0);
}

TEST_F(TimeseriesTest, FinalizeKeepsSampleRecordedAtExactBoundary) {
  TsCollector ts = make(100_ms);
  Counter& c = obs.metrics.counter("test.boundary");
  ts.start();
  // Runs after window 0's tick (scheduled earlier for the same instant);
  // the run then ends with the clock exactly on the boundary. The sample
  // must survive in a zero-length partial window.
  sim.schedule(100_ms, [&] { c.inc(); });
  sim.run_until(100_ms);
  ts.finalize();

  ASSERT_EQ(ts.windows_closed(), 2u);
  const TsWindow& tail = ts.windows().back();
  EXPECT_TRUE(tail.partial);
  EXPECT_EQ(tail.start, tail.end);
  ASSERT_NE(tail.find("test.boundary"), nullptr);
}

TEST_F(TimeseriesTest, FinalizeSkipsEmptyZeroLengthWindow) {
  TsCollector ts = make(100_ms);
  (void)obs.metrics.counter("test.idle");
  ts.start();
  sim.run_until(100_ms);
  ts.finalize();
  EXPECT_EQ(ts.windows_closed(), 1u);  // no second, zero-length window
}

TEST_F(TimeseriesTest, FinalizeIsIdempotent) {
  TsCollector ts = make(100_ms);
  Counter& c = obs.metrics.counter("test.c");
  ts.start();
  sim.schedule(150_ms, [&] { c.inc(); });
  sim.run_until(150_ms);
  ts.finalize();
  const std::uint64_t closed = ts.windows_closed();
  ts.finalize();
  EXPECT_EQ(ts.windows_closed(), closed);
}

TEST_F(TimeseriesTest, RetentionEvictsOldWindowsAfterCallback) {
  TsCollector ts = make(10_ms, /*retention=*/3);
  std::vector<std::size_t> ring_sizes;
  ts.set_window_callback([&](const TsCollector& c, const TsWindow&) {
    ring_sizes.push_back(c.windows().size());
  });
  ts.start();
  sim.run_until(100_ms);

  EXPECT_EQ(ts.windows_closed(), 10u);
  ASSERT_EQ(ts.windows().size(), 3u);
  EXPECT_EQ(ts.windows().front().index, 7u);
  EXPECT_EQ(ts.windows().back().index, 9u);
  // The callback always sees the just-closed window (eviction runs after).
  for (std::size_t i = 0; i < ring_sizes.size(); ++i) {
    EXPECT_EQ(ring_sizes[i], std::min<std::size_t>(i + 1, 4u)) << "close " << i;
  }
}

TEST_F(TimeseriesTest, PresampleHookRunsBeforeSampling) {
  TsCollector ts = make(100_ms);
  Gauge& pushed = obs.metrics.gauge("test.pushed");
  int calls = 0;
  ts.set_presample_hook([&] {
    ++calls;
    pushed.set(static_cast<double>(calls));
  });
  ts.start();
  sim.run_until(200_ms);

  ASSERT_EQ(ts.windows_closed(), 2u);
  EXPECT_DOUBLE_EQ(ts.windows()[0].find("test.pushed")->value, 1.0);
  EXPECT_DOUBLE_EQ(ts.windows()[1].find("test.pushed")->value, 2.0);
}

TEST_F(TimeseriesTest, JsonlRoundTrip) {
  const std::string path = ::testing::TempDir() + "/curb_ts_roundtrip.jsonl";
  obs.enable(sim);
  {
    TsCollector ts{obs, sim, TsOptions{100_ms, 64}};
    ASSERT_TRUE(ts.set_output(path));
    Counter& c = obs.metrics.counter("test.c", {{"label", "va\"lue"}});
    Gauge& g = obs.metrics.gauge("test.g");
    Histogram& h = obs.metrics.histogram("test.h");
    ts.start();
    sim.schedule(10_ms, [&] {
      c.inc(2);
      g.set(-1.5);
      h.record(300.0);
      h.record(700.0);
    });
    sim.schedule(150_ms, [&] { c.inc(); });
    sim.run_until(150_ms);
    ts.finalize();

    std::ifstream in{path, std::ios::binary};
    ASSERT_TRUE(in);
    const std::vector<TsWindow> parsed = parse_ts_jsonl(in);
    ASSERT_EQ(parsed.size(), ts.windows().size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      EXPECT_EQ(parsed[i].index, ts.windows()[i].index);
      EXPECT_EQ(parsed[i].start, ts.windows()[i].start);
      EXPECT_EQ(parsed[i].end, ts.windows()[i].end);
      EXPECT_EQ(parsed[i].partial, ts.windows()[i].partial);
      EXPECT_EQ(parsed[i].series, ts.windows()[i].series);
    }
  }
  std::remove(path.c_str());
}

TEST_F(TimeseriesTest, ParserToleratesTrailingIncompleteLine) {
  std::istringstream in{
      "{\"w\":0,\"start_us\":0,\"end_us\":1000,\"partial\":false,\"series\":{}}\n"
      "{\"w\":1,\"start_us\":1000,\"end_"};
  const std::vector<TsWindow> parsed = parse_ts_jsonl(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].index, 0u);
}

TEST_F(TimeseriesTest, RejectsBadOptions) {
  obs.enable(sim);
  EXPECT_THROW((TsCollector{obs, sim, TsOptions{sim::SimTime::zero(), 4}}),
               std::invalid_argument);
  EXPECT_THROW((TsCollector{obs, sim, TsOptions{100_ms, 0}}), std::invalid_argument);
}

}  // namespace
}  // namespace curb::obs
