// Exporter edge cases: an empty metrics registry and an empty (or disabled)
// tracer must still emit valid, parseable documents — CI and scripts consume
// these files unconditionally. Validated with the curb::prof JSON parser.

#include <gtest/gtest.h>

#include <sstream>

#include "curb/obs/export.hpp"
#include "curb/obs/metrics.hpp"
#include "curb/obs/trace.hpp"
#include "curb/prof/bench_diff.hpp"
#include "curb/sim/simulator.hpp"

namespace obs = curb::obs;
namespace prof = curb::prof;

namespace {

TEST(ExportEdge, EmptyMetricsRegistryJson) {
  const obs::MetricsRegistry registry;
  std::ostringstream out;
  obs::write_metrics_json(registry, out);
  const prof::JsonValue doc = prof::parse_json(out.str());
  // Whatever the top-level shape, it must parse and carry no series.
  if (doc.type == prof::JsonValue::Type::kArray) {
    EXPECT_TRUE(doc.array.empty());
  } else {
    ASSERT_EQ(doc.type, prof::JsonValue::Type::kObject);
    for (const auto& [key, member] : doc.object) {
      if (member.type == prof::JsonValue::Type::kArray) {
        EXPECT_TRUE(member.array.empty()) << key;
      }
    }
  }
}

TEST(ExportEdge, EmptyMetricsRegistryCsv) {
  const obs::MetricsRegistry registry;
  std::ostringstream out;
  obs::write_metrics_csv(registry, out);
  // At most a header line; no data rows.
  std::istringstream lines{out.str()};
  std::string line;
  std::size_t rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_LE(rows, 1u);
}

TEST(ExportEdge, EmptyTracerChromeTrace) {
  const obs::Tracer tracer;  // never bound, never enabled
  std::ostringstream out;
  obs::write_chrome_trace(tracer, out);
  const prof::JsonValue doc = prof::parse_json(out.str());
  ASSERT_EQ(doc.type, prof::JsonValue::Type::kObject);
  const prof::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Metadata events ("M", process/thread names) are fine; no spans ("X").
  for (const auto& event : events->array) {
    const prof::JsonValue* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_NE(ph->str, "X");
  }
}

TEST(ExportEdge, EmptyTracerSpansJsonlRoundTrip) {
  const obs::Tracer tracer;
  std::ostringstream out;
  obs::write_spans_jsonl(tracer, out);
  std::istringstream in{out.str()};
  EXPECT_TRUE(obs::parse_spans_jsonl(in).empty());
}

TEST(ExportEdge, DisabledTracerRecordsNothing) {
  curb::sim::Simulator sim;
  obs::Tracer tracer;
  tracer.bind_clock(sim);
  // Not enabled: spans are dropped at the entry point.
  const obs::SpanId id = tracer.begin("PKT_IN", "switch0");
  tracer.end(id);
  std::ostringstream out;
  obs::write_spans_jsonl(tracer, out);
  EXPECT_TRUE(out.str().empty());
}

TEST(ExportEdge, MetricsWithSeriesStillParse) {
  obs::MetricsRegistry registry;
  registry.counter("net.messages", {{"category", "AGREE"}}).inc();
  registry.histogram("net.delay_us").record(12.5);
  std::ostringstream out;
  obs::write_metrics_json(registry, out);
  EXPECT_NO_THROW(prof::parse_json(out.str()));
}

}  // namespace
