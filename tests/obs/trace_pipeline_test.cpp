// End-to-end trace pipeline: run the real simulation with tracing on, export
// spans-JSONL, parse it back, and drive curb-trace analysis over it — the
// same path the curb-trace CLI takes.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "curb/core/simulation.hpp"
#include "curb/obs/analysis.hpp"
#include "curb/obs/export.hpp"
#include "curb/obs/observatory.hpp"
#include "curb/obs/report.hpp"

namespace curb::core {
namespace {

using namespace curb::sim::literals;

CurbOptions traced_options() {
  CurbOptions opts;
  opts.max_cs_delay_ms = opt::CapInstance::kNoLimit;
  opts.controller_capacity = 8.0;
  opts.op_time_mode = OpTimeMode::kFixed;
  opts.op_fixed_time = 20_ms;
  opts.observability = true;
  return opts;
}

CurbSimulation traced_sim(CurbOptions opts = traced_options()) {
  return CurbSimulation{net::random_geo_topology(8, 10, 99), opts};
}

TEST(TracePipeline, CleanRunHasZeroAnomalies) {
  CurbSimulation sim = traced_sim();
  for (int round = 0; round < 2; ++round) {
    const RoundMetrics m = sim.run_packet_in_round(2);
    ASSERT_EQ(m.issued, m.accepted);
  }
  const obs::TraceAnalysis analysis =
      obs::TraceAnalysis::from_tracer(sim.network().observatory()->tracer);
  EXPECT_GT(analysis.transactions().size(), 0u);
  EXPECT_EQ(analysis.complete_count(), analysis.transactions().size());
  for (const obs::Finding& f : analysis.findings()) {
    ADD_FAILURE() << "unexpected anomaly: " << f.detector << ": " << f.message;
  }
}

TEST(TracePipeline, PhaseSumsMatchEndToEndLatency) {
  CurbSimulation sim = traced_sim();
  (void)sim.run_packet_in_round(2);
  const obs::TraceAnalysis analysis =
      obs::TraceAnalysis::from_tracer(sim.network().observatory()->tracer);
  ASSERT_GT(analysis.complete_count(), 0u);
  for (const obs::TransactionTrace& txn : analysis.transactions()) {
    if (!txn.complete) continue;
    std::int64_t sum = 0;
    std::int64_t cursor = txn.start_us;
    for (const obs::Segment& seg : txn.segments) {
      EXPECT_EQ(seg.start_us, cursor);  // contiguous
      EXPECT_GE(seg.duration_us(), 0);
      cursor = seg.end_us;
      sum += seg.duration_us();
    }
    EXPECT_EQ(cursor, txn.end_us);
    EXPECT_EQ(sum, txn.latency_us());
    // The full chain should be reconstructable on the PBFT engine.
    EXPECT_NE(txn.agree_span, 0u);
    EXPECT_NE(txn.block_span, 0u);
    EXPECT_NE(txn.reply_span, 0u);
  }
  // Aggregate consistency: per-phase sums partition the e2e sum.
  std::int64_t phase_sum = 0;
  for (const auto& [phase, stats] : analysis.phase_stats()) phase_sum += stats.sum_us;
  EXPECT_EQ(phase_sum, analysis.e2e().sum_us);
}

TEST(TracePipeline, SameSeedRunsExportIdenticalSpans) {
  std::ostringstream a;
  std::ostringstream b;
  {
    CurbSimulation sim = traced_sim();
    (void)sim.run_packet_in_round(2);
    obs::write_spans_jsonl(sim.network().observatory()->tracer, a);
  }
  {
    CurbSimulation sim = traced_sim();
    (void)sim.run_packet_in_round(2);
    obs::write_spans_jsonl(sim.network().observatory()->tracer, b);
  }
  EXPECT_FALSE(a.str().empty());
  EXPECT_EQ(a.str(), b.str());  // byte-stable across same-seed runs
}

TEST(TracePipeline, JsonlRoundTripPreservesAnalysis) {
  CurbSimulation sim = traced_sim();
  (void)sim.run_packet_in_round(2);
  const obs::Tracer& tracer = sim.network().observatory()->tracer;

  std::ostringstream exported;
  obs::write_spans_jsonl(tracer, exported);
  std::istringstream in{exported.str()};
  const obs::TraceAnalysis parsed{obs::parse_spans_jsonl(in)};
  const obs::TraceAnalysis live = obs::TraceAnalysis::from_tracer(tracer);

  std::ostringstream report_parsed;
  std::ostringstream report_live;
  obs::write_report_json(parsed, report_parsed);
  obs::write_report_json(live, report_live);
  EXPECT_EQ(report_parsed.str(), report_live.str());
  EXPECT_EQ(parsed.spans().size(), live.spans().size());
}

TEST(TracePipeline, ReportJsonDeterministicAcrossRuns) {
  std::ostringstream a;
  std::ostringstream b;
  {
    CurbSimulation sim = traced_sim();
    (void)sim.run_packet_in_round(2);
    obs::write_report_json(
        obs::TraceAnalysis::from_tracer(sim.network().observatory()->tracer), a);
  }
  {
    CurbSimulation sim = traced_sim();
    (void)sim.run_packet_in_round(2);
    obs::write_report_json(
        obs::TraceAnalysis::from_tracer(sim.network().observatory()->tracer), b);
  }
  EXPECT_EQ(a.str(), b.str());
}

TEST(TracePipeline, SameSeedDiffShowsNoRegression) {
  CurbSimulation sim_a = traced_sim();
  CurbSimulation sim_b = traced_sim();
  (void)sim_a.run_packet_in_round(2);
  (void)sim_b.run_packet_in_round(2);
  const obs::DiffResult diff = obs::diff_analyses(
      obs::TraceAnalysis::from_tracer(sim_a.network().observatory()->tracer),
      obs::TraceAnalysis::from_tracer(sim_b.network().observatory()->tracer));
  EXPECT_EQ(diff.regressions(), 0u);
}

TEST(TracePipeline, SilentByzantineLeaderIsFlagged) {
  CurbSimulation sim = traced_sim();
  // Silence a group leader (the fig4-style stall): its group's slots cannot
  // make progress until timeouts fire and a view change installs the next
  // primary.
  const auto& groups = sim.network().genesis_state().groups();
  ASSERT_FALSE(groups.empty());
  sim.set_controller_behavior(groups.front().leader, bft::Behavior::kSilent);
  (void)sim.run_packet_in_round(2);
  const obs::TraceAnalysis analysis =
      obs::TraceAnalysis::from_tracer(sim.network().observatory()->tracer);
  ASSERT_FALSE(analysis.findings().empty());
  bool stall_flagged = false;
  for (const obs::Finding& f : analysis.findings()) {
    if (f.detector == "consensus_timeout" || f.detector == "view_change" ||
        f.detector == "stalled_round" || f.detector == "unserved_request") {
      stall_flagged = true;
    }
  }
  EXPECT_TRUE(stall_flagged);
}

}  // namespace
}  // namespace curb::core
