// End-to-end telemetry pipeline: run the real simulation with the windowed
// collector on, stream JSONL, parse it back, and drive the SLO watchdog —
// the same path curb-sim --ts-out/--slo and curb-watch take. Also pins the
// headline determinism guarantee: telemetry must not change protocol
// outputs, and same-seed telemetry must be byte-identical.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "curb/core/simulation.hpp"
#include "curb/obs/slo.hpp"
#include "curb/obs/timeseries.hpp"

namespace curb::core {
namespace {

using namespace curb::sim::literals;

CurbOptions ts_options() {
  CurbOptions opts;
  opts.max_cs_delay_ms = opt::CapInstance::kNoLimit;
  opts.controller_capacity = 8.0;
  opts.op_time_mode = OpTimeMode::kFixed;
  opts.op_fixed_time = 20_ms;
  opts.ts_window = 50_ms;
  return opts;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<RoundMetrics> run_rounds(const CurbOptions& opts, int rounds) {
  CurbSimulation sim{net::random_geo_topology(8, 10, 99), opts};
  std::vector<RoundMetrics> out;
  for (int i = 0; i < rounds; ++i) out.push_back(sim.run_packet_in_round(2));
  sim.network().finalize_telemetry();
  return out;
}

TEST(TsPipeline, TelemetryDoesNotChangeProtocolOutputs) {
  CurbOptions plain;
  plain.max_cs_delay_ms = opt::CapInstance::kNoLimit;
  plain.controller_capacity = 8.0;
  plain.op_time_mode = OpTimeMode::kFixed;
  plain.op_fixed_time = 20_ms;

  const std::vector<RoundMetrics> bare = run_rounds(plain, 2);
  const std::vector<RoundMetrics> observed = run_rounds(ts_options(), 2);
  ASSERT_EQ(bare.size(), observed.size());
  for (std::size_t i = 0; i < bare.size(); ++i) {
    EXPECT_EQ(bare[i].issued, observed[i].issued);
    EXPECT_EQ(bare[i].accepted, observed[i].accepted);
    EXPECT_DOUBLE_EQ(bare[i].mean_latency_ms, observed[i].mean_latency_ms);
    EXPECT_DOUBLE_EQ(bare[i].max_latency_ms, observed[i].max_latency_ms);
    EXPECT_EQ(bare[i].messages, observed[i].messages);
  }
}

TEST(TsPipeline, SameSeedRunsEmitByteIdenticalJsonl) {
  const std::string path_a = ::testing::TempDir() + "/curb_ts_a.jsonl";
  const std::string path_b = ::testing::TempDir() + "/curb_ts_b.jsonl";
  for (const std::string& path : {path_a, path_b}) {
    CurbOptions opts = ts_options();
    opts.ts_out = path;
    (void)run_rounds(opts, 2);
  }
  const std::string a = slurp(path_a);
  const std::string b = slurp(path_b);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(TsPipeline, StreamedJsonlMatchesInMemoryWindows) {
  const std::string path = ::testing::TempDir() + "/curb_ts_stream.jsonl";
  CurbOptions opts = ts_options();
  opts.ts_out = path;
  opts.ts_retention = 1'000'000;  // keep everything for the comparison
  CurbSimulation sim{net::random_geo_topology(8, 10, 99), opts};
  (void)sim.run_packet_in_round(2);
  sim.network().finalize_telemetry();

  obs::TsCollector* ts = sim.network().ts();
  ASSERT_NE(ts, nullptr);
  ASSERT_GT(ts->windows_closed(), 0u);

  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in);
  const std::vector<obs::TsWindow> parsed = obs::parse_ts_jsonl(in);
  ASSERT_EQ(parsed.size(), ts->windows().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].index, ts->windows()[i].index);
    EXPECT_EQ(parsed[i].series, ts->windows()[i].series);
  }
  std::remove(path.c_str());
}

TEST(TsPipeline, SeriesCarryGroupLoadAndProtocolMetrics) {
  CurbOptions opts = ts_options();
  opts.ts_retention = 1'000'000;
  CurbSimulation sim{net::random_geo_topology(8, 10, 99), opts};
  (void)sim.run_packet_in_round(2);
  sim.network().finalize_telemetry();

  const obs::TsCollector* ts = sim.network().ts();
  ASSERT_NE(ts, nullptr);
  bool saw_group_load = false, saw_groups = false, saw_latency = false;
  for (const auto& window : ts->windows()) {
    for (const auto& [key, value] : window.series) {
      if (key.rfind("core.group_load{", 0) == 0) {
        saw_group_load = true;
        EXPECT_EQ(value.kind, obs::TsValue::Kind::kGauge);
      }
      if (key == "core.groups") saw_groups = true;
      if (key == "core.request_latency_us") {
        saw_latency = true;
        EXPECT_EQ(value.kind, obs::TsValue::Kind::kHist);
        EXPECT_GT(value.count, 0u);
      }
    }
  }
  EXPECT_TRUE(saw_group_load);
  EXPECT_TRUE(saw_groups);
  EXPECT_TRUE(saw_latency);
}

TEST(TsPipeline, SloEngineFiresOnInjectedFaults) {
  CurbOptions opts = ts_options();
  opts.fault_spec = "drop(p=0.5,cat=REPLY)";
  opts.slo_rules = "rate(net.dropped{category=\"REPLY\",reason=\"fault\"}) == 0";
  CurbSimulation sim{net::random_geo_topology(8, 10, 99), opts};
  (void)sim.run_packet_in_round(2);
  sim.network().finalize_telemetry();

  obs::SloEngine* slo = sim.network().slo();
  ASSERT_NE(slo, nullptr);
  EXPECT_TRUE(slo->breached());
  // The breach also feeds back into the registry (and hence telemetry).
  EXPECT_GT(sim.network()
                .observatory()
                ->metrics.counter("slo.breaches",
                                  {{"rule", slo->rules().rules[0].text()}})
                .value(),
            0u);
}

TEST(TsPipeline, CleanRunSatisfiesLatencySlo) {
  CurbOptions opts = ts_options();
  opts.slo_rules =
      "p99(core.request_latency_us) < 2s over 5; rate(bft.view_changes) == 0";
  CurbSimulation sim{net::random_geo_topology(8, 10, 99), opts};
  (void)sim.run_packet_in_round(2);
  sim.network().finalize_telemetry();
  ASSERT_NE(sim.network().slo(), nullptr);
  EXPECT_FALSE(sim.network().slo()->breached());
}

TEST(TsPipeline, SloRulesImplyTelemetryAndObservability) {
  CurbOptions opts;
  opts.max_cs_delay_ms = opt::CapInstance::kNoLimit;
  opts.controller_capacity = 8.0;
  opts.slo_rules = "rate(core.rounds) >= 0";
  ASSERT_FALSE(opts.observability);
  ASSERT_EQ(opts.ts_window, sim::SimTime::zero());
  CurbSimulation sim{net::random_geo_topology(8, 10, 99), opts};
  EXPECT_NE(sim.network().observatory(), nullptr);
  EXPECT_NE(sim.network().ts(), nullptr);
  EXPECT_NE(sim.network().slo(), nullptr);
  EXPECT_EQ(sim.network().ts()->options().window, sim::SimTime::millis(100));
}

TEST(TsPipeline, DeferredInitFlushesTelemetryWhenInfeasible) {
  const std::string path = ::testing::TempDir() + "/curb_ts_abort.jsonl";
  CurbOptions opts = ts_options();
  opts.ts_out = path;
  opts.max_cs_delay_ms = 0.01;  // no controller can serve any switch
  CurbSimulation sim{net::random_geo_topology(8, 10, 99), opts,
                     CurbSimulation::DeferInit{}};
  EXPECT_FALSE(sim.initialized());
  EXPECT_THROW(sim.initialize(), std::runtime_error);
  // The abort path still closes the stream; an empty run yields an empty
  // but complete (flushed, parseable) file.
  sim.network().finalize_telemetry();
  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in);
  EXPECT_NO_THROW((void)obs::parse_ts_jsonl(in));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace curb::core
