// curb::obs::res unit tests: counter bookkeeping via the detail hooks (which
// work whether or not the process-wide latch is on), the mem-profile JSON
// round-trip, mem_diff thresholds, the collapsed-stack memory export, and —
// when the binary runs with CURB_MEM_ACCOUNT=1 (the res_tests ctest
// registration does) — the real interposed-allocator path.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "curb/obs/res/account.hpp"
#include "curb/obs/res/report.hpp"
#include "curb/prof/profiler.hpp"

namespace curb::obs::res {
namespace {

constexpr std::size_t kBft = static_cast<std::size_t>(prof::ComponentTag::kBft);
constexpr std::size_t kChain =
    static_cast<std::size_t>(prof::ComponentTag::kChain);
constexpr std::size_t kCrypto =
    static_cast<std::size_t>(prof::ComponentTag::kCrypto);

// Counters are process-global, so tests assert on snapshot *deltas* for a tag
// no concurrent allocation can touch (per-tag counters only move via these
// hooks or allocations inside a matching prof::Scope — the test opens none).

TEST(ResAccount, HooksTrackCumulativeAndLiveCounters) {
  const MemSnapshot before = snapshot();
  detail::record_alloc(1000, prof::ComponentTag::kBft);
  detail::record_alloc(24, prof::ComponentTag::kBft);
  detail::record_free(1000, prof::ComponentTag::kBft);
  const MemSnapshot after = snapshot();

  EXPECT_EQ(after.tags[kBft].allocs - before.tags[kBft].allocs, 2u);
  EXPECT_EQ(after.tags[kBft].frees - before.tags[kBft].frees, 1u);
  EXPECT_EQ(after.tags[kBft].alloc_bytes - before.tags[kBft].alloc_bytes, 1024u);
  EXPECT_EQ(after.tags[kBft].freed_bytes - before.tags[kBft].freed_bytes, 1000u);
  EXPECT_EQ(after.tags[kBft].live_bytes - before.tags[kBft].live_bytes, 24u);

  detail::record_free(24, prof::ComponentTag::kBft);
  const MemSnapshot settled = snapshot();
  EXPECT_EQ(settled.tags[kBft].live_bytes, before.tags[kBft].live_bytes);
}

TEST(ResAccount, PeakIsHighWaterAndResetsToLive) {
  detail::record_alloc(1 << 20, prof::ComponentTag::kChain);
  const MemSnapshot high = snapshot();
  EXPECT_GE(high.tags[kChain].peak_live_bytes, high.tags[kChain].live_bytes);

  detail::record_free(1 << 20, prof::ComponentTag::kChain);
  const MemSnapshot dropped = snapshot();
  // Peak holds the high-water mark across the free...
  EXPECT_EQ(dropped.tags[kChain].peak_live_bytes,
            high.tags[kChain].peak_live_bytes);

  reset_peaks();
  const MemSnapshot reset = snapshot();
  // ...until reset_peaks() rebases it to current live.
  EXPECT_EQ(reset.tags[kChain].peak_live_bytes, reset.tags[kChain].live_bytes);
}

MemSnapshot sample_snapshot() {
  MemSnapshot snap;
  snap.total = {100, 60, 50000, 30000, 20000, 26000};
  snap.tags[kCrypto] = {40, 30, 20000, 15000, 5000, 9000};
  snap.tags[kBft] = {50, 25, 25000, 12000, 13000, 15000};
  snap.header_bytes = 100 * 32;
  return snap;
}

TEST(ResReport, JsonRoundTripPreservesEveryCounter) {
  const MemSnapshot snap = sample_snapshot();
  std::ostringstream json;
  write_mem_profile_json(snap, json);
  std::istringstream in{json.str()};
  const MemSnapshot back = parse_mem_profile_json(in);

  EXPECT_EQ(back.total.allocs, snap.total.allocs);
  EXPECT_EQ(back.total.peak_live_bytes, snap.total.peak_live_bytes);
  EXPECT_EQ(back.header_bytes, snap.header_bytes);
  for (std::size_t i = 0; i < kTagCount; ++i) {
    EXPECT_EQ(back.tags[i].allocs, snap.tags[i].allocs) << "tag " << i;
    EXPECT_EQ(back.tags[i].frees, snap.tags[i].frees) << "tag " << i;
    EXPECT_EQ(back.tags[i].alloc_bytes, snap.tags[i].alloc_bytes) << "tag " << i;
    EXPECT_EQ(back.tags[i].freed_bytes, snap.tags[i].freed_bytes) << "tag " << i;
    EXPECT_EQ(back.tags[i].live_bytes, snap.tags[i].live_bytes) << "tag " << i;
    EXPECT_EQ(back.tags[i].peak_live_bytes, snap.tags[i].peak_live_bytes)
        << "tag " << i;
  }
  EXPECT_EQ(snap.tagged_alloc_bytes(), 45000u);
}

TEST(ResReport, ParseRejectsMalformedInput) {
  std::istringstream garbage{"not json at all"};
  EXPECT_THROW((void)parse_mem_profile_json(garbage), std::exception);

  std::istringstream unknown_tag{
      R"({"total":{"allocs":1,"frees":0,"alloc_bytes":8,"freed_bytes":0,)"
      R"("live_bytes":8,"peak_live_bytes":8},"header_bytes":32,)"
      R"("tags":[{"tag":"warp_drive","counters":{"allocs":1,"frees":0,)"
      R"("alloc_bytes":8,"freed_bytes":0,"live_bytes":8,"peak_live_bytes":8}}]})"};
  EXPECT_THROW((void)parse_mem_profile_json(unknown_tag), std::exception);
}

TEST(ResReport, MemReportShowsAttributionCoverage) {
  std::ostringstream out;
  write_mem_report(sample_snapshot(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("crypto"), std::string::npos) << text;
  EXPECT_NE(text.find("bft"), std::string::npos) << text;
  // 45000 tagged of 50000 allocated = 90% coverage.
  EXPECT_NE(text.find("90.00% of allocated bytes tagged"), std::string::npos)
      << text;
}

TEST(ResDiff, GrowthBeyondThresholdRegresses) {
  const MemSnapshot base = sample_snapshot();
  MemSnapshot candidate = base;
  candidate.tags[kCrypto].alloc_bytes = 40000;  // +100% > 25%, > 4096 floor
  candidate.total.alloc_bytes = 70000;

  const MemDiffResult diff = mem_diff(base, candidate);
  EXPECT_GT(diff.regressions(), 0u);

  MemDiffOptions warn;
  warn.warn_only = true;
  EXPECT_EQ(mem_diff(base, candidate, warn).regressions(), 0u);
}

TEST(ResDiff, ShrinkageAndJitterDoNotRegress) {
  const MemSnapshot base = sample_snapshot();

  MemSnapshot shrunk = base;
  shrunk.tags[kBft].alloc_bytes = 8000;  // big improvement — report, no fail
  EXPECT_EQ(mem_diff(base, shrunk).regressions(), 0u);

  MemSnapshot jitter = base;
  jitter.tags[kCrypto].alloc_bytes += 2048;  // below the 4096-byte floor
  EXPECT_EQ(mem_diff(base, jitter).regressions(), 0u);

  MemSnapshot small_pct = base;
  small_pct.tags[kBft].alloc_bytes += 5000;  // +20% < 25% threshold
  EXPECT_EQ(mem_diff(base, small_pct).regressions(), 0u);
}

TEST(ResReport, CollapsedExportEmitsFramePathsWithBytes) {
  prof::Profiler profiler;
  const std::uint32_t outer = profiler.enter("solver.cap");
  const std::uint32_t inner = profiler.enter("crypto.sign");
  profiler.leave(inner, 10);
  profiler.leave(outer, 20);

  std::vector<FrameAlloc> frames(profiler.nodes().size());
  frames[inner] = {3, 4096};
  frames[outer] = {1, 512};
  frames.push_back({9, 999});  // out of range: must be ignored, not crash

  std::ostringstream out;
  write_mem_collapsed(profiler, frames, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("solver.cap;crypto.sign 4096"), std::string::npos) << text;
  EXPECT_NE(text.find("solver.cap 512"), std::string::npos) << text;
  EXPECT_EQ(text.find("999"), std::string::npos) << text;
}

// The real interposed-allocator path: only meaningful when the process-wide
// latch is on (ctest registers res_tests with CURB_MEM_ACCOUNT=1; a plain
// run of the binary skips).
TEST(ResAccount, InterposedAllocatorAttributesToActiveScope) {
  if (!enabled()) {
    GTEST_SKIP() << "CURB_MEM_ACCOUNT not set; interposition latch is off";
  }
  ASSERT_TRUE(prof::component_tags_enabled())
      << "the accounting latch must also latch component tags on";

  constexpr std::size_t kBytes = 1 << 17;
  const MemSnapshot before = snapshot();
  // A volatile pointer variable keeps the compiler from eliding the paired
  // new/delete ([expr.new]/12 would otherwise allow it).
  char* volatile block = nullptr;
  {
    prof::Scope scope{"crypto.test_alloc"};
    block = new char[kBytes];
  }
  const MemSnapshot mid = snapshot();
  EXPECT_EQ(mid.tags[kCrypto].alloc_bytes - before.tags[kCrypto].alloc_bytes,
            kBytes);
  EXPECT_EQ(mid.tags[kCrypto].live_bytes - before.tags[kCrypto].live_bytes,
            kBytes);
  EXPECT_GT(mid.header_bytes, before.header_bytes);

  // The free attributes to the tag stored at allocation time, even though no
  // scope is open here.
  delete[] block;
  const MemSnapshot after = snapshot();
  EXPECT_EQ(after.tags[kCrypto].live_bytes, before.tags[kCrypto].live_bytes);
  EXPECT_EQ(after.tags[kCrypto].frees - mid.tags[kCrypto].frees, 1u);
}

TEST(ResAccount, InterposedAllocatorRecordsPerFrameAllocations) {
  if (!enabled()) {
    GTEST_SKIP() << "CURB_MEM_ACCOUNT not set; interposition latch is off";
  }
  prof::Profiler profiler;
  prof::Session session{profiler};
  clear_frame_allocations();

  std::uint32_t node = 0;
  char* volatile block = nullptr;
  {
    prof::Scope scope{"solver.frame_alloc_test"};
    node = profiler.current_node();
    block = new char[4096];
  }
  delete[] block;
  const std::vector<FrameAlloc> frames = frame_allocations();
  ASSERT_GT(frames.size(), node);
  EXPECT_GE(frames[node].allocs, 1u);
  EXPECT_GE(frames[node].bytes, 4096u);
  clear_frame_allocations();
}

}  // namespace
}  // namespace curb::obs::res
