#include "curb/fault/spec.hpp"

#include <gtest/gtest.h>

namespace curb::fault {
namespace {

using sim::SimTime;

TEST(FaultSpec, EmptySpecYieldsEmptyPlan) {
  const FaultPlan plan = FaultPlan::parse("");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.canonical(), "");
  // Stray separators are harmless.
  EXPECT_TRUE(FaultPlan::parse(";;  ; ").empty());
}

TEST(FaultSpec, ParsesDropClause) {
  const FaultPlan plan = FaultPlan::parse("drop(p=0.25,cat=REPLY,src=ctrl1,dst=sw3)");
  ASSERT_EQ(plan.link_faults.size(), 1u);
  const LinkFaultClause& c = plan.link_faults[0];
  EXPECT_EQ(c.kind, FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(c.probability, 0.25);
  EXPECT_EQ(c.category, "REPLY");
  EXPECT_EQ(c.src.kind, SelectorKind::kController);
  EXPECT_EQ(c.src.ordinal, std::optional<std::uint32_t>{1});
  EXPECT_EQ(c.dst.kind, SelectorKind::kSwitch);
  EXPECT_EQ(c.dst.ordinal, std::optional<std::uint32_t>{3});
}

TEST(FaultSpec, DropDefaults) {
  const FaultPlan plan = FaultPlan::parse("drop()");
  ASSERT_EQ(plan.link_faults.size(), 1u);
  const LinkFaultClause& c = plan.link_faults[0];
  EXPECT_DOUBLE_EQ(c.probability, 1.0);
  EXPECT_EQ(c.category, "*");
  EXPECT_EQ(c.src.kind, SelectorKind::kAny);
  EXPECT_EQ(c.dst.kind, SelectorKind::kAny);
  EXPECT_EQ(c.window.from, SimTime::zero());
  EXPECT_FALSE(c.window.until.has_value());
}

TEST(FaultSpec, ParsesDelayBounds) {
  const FaultPlan plan = FaultPlan::parse("delay(p=0.5,min=5,max=40.5)");
  ASSERT_EQ(plan.link_faults.size(), 1u);
  const LinkFaultClause& c = plan.link_faults[0];
  EXPECT_EQ(c.kind, FaultKind::kDelay);
  EXPECT_EQ(c.delay_min, SimTime::millis(5));
  EXPECT_EQ(c.delay_max.as_micros(), 40500);
  EXPECT_THROW((void)FaultPlan::parse("delay(min=30,max=10)"), SpecError);
}

TEST(FaultSpec, ParsesDuplicateClause) {
  const FaultPlan plan = FaultPlan::parse("dup(cat=REPLY,copies=3)");
  ASSERT_EQ(plan.link_faults.size(), 1u);
  const LinkFaultClause& c = plan.link_faults[0];
  EXPECT_EQ(c.kind, FaultKind::kDuplicate);
  EXPECT_EQ(c.copies, 3u);
  // Default trailing offsets for extra copies.
  EXPECT_EQ(c.delay_min, SimTime::zero());
  EXPECT_EQ(c.delay_max, SimTime::millis(10));
  EXPECT_THROW((void)FaultPlan::parse("dup(copies=0)"), SpecError);
}

TEST(FaultSpec, ParsesPartitionWindow) {
  const FaultPlan plan = FaultPlan::parse("partition(a=ctrl1,b=*,from=100,until=800)");
  ASSERT_EQ(plan.link_faults.size(), 1u);
  const LinkFaultClause& c = plan.link_faults[0];
  EXPECT_EQ(c.kind, FaultKind::kPartition);
  EXPECT_EQ(c.window.from, SimTime::millis(100));
  ASSERT_TRUE(c.window.until.has_value());
  EXPECT_EQ(*c.window.until, SimTime::millis(800));
  EXPECT_TRUE(c.window.contains(SimTime::millis(100)));
  EXPECT_TRUE(c.window.contains(SimTime::millis(799)));
  EXPECT_FALSE(c.window.contains(SimTime::millis(800)));
  EXPECT_FALSE(c.window.contains(SimTime::millis(99)));
  // A both-sides-wildcard partition would sever every link in the network.
  EXPECT_THROW((void)FaultPlan::parse("partition(a=*,b=*)"), SpecError);
  EXPECT_THROW((void)FaultPlan::parse("partition(a=ctrl1,from=50,until=50)"), SpecError);
}

TEST(FaultSpec, ParsesCrashClause) {
  const FaultPlan plan = FaultPlan::parse("crash(node=ctrl2,at=300,down=1500)");
  ASSERT_EQ(plan.node_events.size(), 1u);
  const NodeEventClause& ev = plan.node_events[0];
  EXPECT_EQ(ev.kind, NodeEventClause::Kind::kCrash);
  EXPECT_EQ(ev.controller, 2u);
  EXPECT_EQ(ev.at, SimTime::millis(300));
  ASSERT_TRUE(ev.down.has_value());
  EXPECT_EQ(*ev.down, SimTime::millis(1500));
}

TEST(FaultSpec, CrashDownZeroMeansNoRestart) {
  const FaultPlan plan = FaultPlan::parse("crash(node=ctrl0,down=0)");
  ASSERT_EQ(plan.node_events.size(), 1u);
  EXPECT_FALSE(plan.node_events[0].down.has_value());
}

TEST(FaultSpec, ParsesEveryByzMode) {
  const struct {
    const char* name;
    ByzMode mode;
  } kCases[] = {
      {"silent", ByzMode::kSilent},
      {"lazy", ByzMode::kLazy},
      {"equivocate", ByzMode::kEquivocate},
      {"selective-silent", ByzMode::kSelectiveSilent},
      {"stale-view", ByzMode::kStaleView},
      {"bogus-reply", ByzMode::kBogusReply},
  };
  for (const auto& c : kCases) {
    const FaultPlan plan =
        FaultPlan::parse(std::string{"byz(node=ctrl1,mode="} + c.name + ")");
    ASSERT_EQ(plan.node_events.size(), 1u) << c.name;
    EXPECT_EQ(plan.node_events[0].kind, NodeEventClause::Kind::kByzantine);
    EXPECT_EQ(plan.node_events[0].mode, c.mode) << c.name;
  }
  EXPECT_THROW((void)FaultPlan::parse("byz(node=ctrl1,mode=teleport)"), SpecError);
  EXPECT_THROW((void)FaultPlan::parse("byz(node=ctrl1)"), SpecError);
}

TEST(FaultSpec, MultiClauseSpecWithWhitespace) {
  const FaultPlan plan = FaultPlan::parse(
      " drop(p=0.1, cat=REPLY) ; crash(node=ctrl1, at=500) ; byz(node=ctrl2, "
      "mode=lazy) ");
  EXPECT_EQ(plan.link_faults.size(), 1u);
  EXPECT_EQ(plan.node_events.size(), 2u);
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_THROW((void)FaultPlan::parse("drop"), SpecError);          // no parens
  EXPECT_THROW((void)FaultPlan::parse("drop(p=0.1"), SpecError);    // unterminated
  EXPECT_THROW((void)FaultPlan::parse("teleport()"), SpecError);    // unknown kind
  EXPECT_THROW((void)FaultPlan::parse("drop(frob=1)"), SpecError);  // unknown key
  EXPECT_THROW((void)FaultPlan::parse("drop(p)"), SpecError);       // not key=value
  EXPECT_THROW((void)FaultPlan::parse("drop(p=1.5)"), SpecError);   // p out of range
  EXPECT_THROW((void)FaultPlan::parse("drop(p=-0.1)"), SpecError);
  EXPECT_THROW((void)FaultPlan::parse("drop(p=abc)"), SpecError);   // bad number
  EXPECT_THROW((void)FaultPlan::parse("drop(src=host1)"), SpecError);
  EXPECT_THROW((void)FaultPlan::parse("crash(at=10)"), SpecError);  // missing node
  EXPECT_THROW((void)FaultPlan::parse("crash(node=*)"), SpecError); // need one ctrl
  EXPECT_THROW((void)FaultPlan::parse("crash(node=sw1)"), SpecError);
  EXPECT_THROW((void)FaultPlan::parse("drop(from=100,until=100)"), SpecError);
}

TEST(FaultSpec, SelectorParseAndPrint) {
  EXPECT_EQ(NodeSelector::parse("*").kind, SelectorKind::kAny);
  const NodeSelector any_ctrl = NodeSelector::parse("ctrl");
  EXPECT_EQ(any_ctrl.kind, SelectorKind::kController);
  EXPECT_FALSE(any_ctrl.ordinal.has_value());
  EXPECT_EQ(any_ctrl.to_string(), "ctrl");
  const NodeSelector sw12 = NodeSelector::parse("sw12");
  EXPECT_EQ(sw12.kind, SelectorKind::kSwitch);
  EXPECT_EQ(sw12.ordinal, std::optional<std::uint32_t>{12});
  EXPECT_EQ(sw12.to_string(), "sw12");
  EXPECT_THROW((void)NodeSelector::parse("ctrlX"), SpecError);
}

TEST(FaultSpec, SelectorMatching) {
  const NodeSelector any = NodeSelector::parse("*");
  EXPECT_TRUE(any.matches(SelectorKind::kController, 5));
  EXPECT_TRUE(any.matches(SelectorKind::kSwitch, 0));
  const NodeSelector ctrl = NodeSelector::parse("ctrl");
  EXPECT_TRUE(ctrl.matches(SelectorKind::kController, 7));
  EXPECT_FALSE(ctrl.matches(SelectorKind::kSwitch, 7));
  const NodeSelector ctrl2 = NodeSelector::parse("ctrl2");
  EXPECT_TRUE(ctrl2.matches(SelectorKind::kController, 2));
  EXPECT_FALSE(ctrl2.matches(SelectorKind::kController, 3));
}

TEST(FaultSpec, CanonicalFormRoundTrips) {
  const char* kSpecs[] = {
      "drop(p=0.25,cat=REPLY,src=ctrl1,dst=sw3,from=10,until=90)",
      "delay(min=5,max=40,src=ctrl)",
      "dup(cat=AGREE,copies=2)",
      "corrupt(p=0.5,cat=REPLY)",
      "partition(a=ctrl1,b=*,until=800)",
      "crash(node=ctrl2,at=300,down=1500)",
      "crash(node=ctrl0,down=0)",
      "byz(node=ctrl3,mode=selective-silent,at=250)",
      "drop(p=0.1);delay(min=1,max=2);crash(node=ctrl1,down=0)",
  };
  for (const char* spec : kSpecs) {
    const std::string canonical = FaultPlan::parse(spec).canonical();
    // Re-parsing the canonical form must be a fixed point.
    EXPECT_EQ(FaultPlan::parse(canonical).canonical(), canonical) << spec;
  }
}

TEST(FaultSpec, FractionalMillisecondsSurviveRoundTrip) {
  const FaultPlan plan = FaultPlan::parse("delay(min=0.25,max=1.75)");
  EXPECT_EQ(plan.link_faults[0].delay_min.as_micros(), 250);
  EXPECT_EQ(plan.link_faults[0].delay_max.as_micros(), 1750);
  const std::string canonical = plan.canonical();
  EXPECT_EQ(FaultPlan::parse(canonical).link_faults[0].delay_min.as_micros(), 250);
}

TEST(FaultSpec, CategoryMatching) {
  LinkFaultClause clause;
  clause.category = "*";
  EXPECT_TRUE(clause.matches_category("REPLY"));
  clause.category = "REPLY";
  EXPECT_TRUE(clause.matches_category("REPLY"));
  EXPECT_FALSE(clause.matches_category("intra-pbft"));
}

}  // namespace
}  // namespace curb::fault
