#include "curb/fault/injector.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "curb/net/topology.hpp"

namespace curb::fault {
namespace {

using sim::SimTime;

/// 2 controllers + 2 switches in a line: ctrl0 - ctrl1 - sw0 - sw1.
/// Controller/switch ordinals match CurbNetwork's id convention (k-th node
/// of the kind).
struct TestNet {
  TestNet() {
    ctrl0 = topo.add_node("c0", net::NodeKind::kController, {0.0, 0.0});
    ctrl1 = topo.add_node("c1", net::NodeKind::kController, {0.0, 1.0});
    sw0 = topo.add_node("s0", net::NodeKind::kSwitch, {0.0, 2.0});
    sw1 = topo.add_node("s1", net::NodeKind::kSwitch, {0.0, 3.0});
    topo.add_link(ctrl0, ctrl1);
    topo.add_link(ctrl1, sw0);
    topo.add_link(sw0, sw1);
  }

  [[nodiscard]] FaultInjector make(const std::string& spec, std::uint64_t seed = 1) {
    return FaultInjector{FaultPlan::parse(spec, seed), topo};
  }

  net::Topology topo;
  net::NodeId ctrl0, ctrl1, sw0, sw1;
};

TEST(FaultInjector, NoPlanNoFaults) {
  TestNet net;
  FaultInjector inj = net.make("");
  const LinkFaultDecision d =
      inj.on_message(net.ctrl0, net.sw0, "REPLY", SimTime::zero());
  EXPECT_FALSE(d.drop);
  EXPECT_FALSE(d.corrupt);
  EXPECT_EQ(d.extra_delay, SimTime::zero());
  EXPECT_TRUE(d.duplicates.empty());
  EXPECT_FALSE(d.any());
}

TEST(FaultInjector, CategoryFilterSelectsMessages) {
  TestNet net;
  FaultInjector inj = net.make("drop(cat=REPLY)");
  EXPECT_TRUE(inj.on_message(net.ctrl0, net.sw0, "REPLY", SimTime::zero()).drop);
  EXPECT_FALSE(inj.on_message(net.ctrl0, net.sw0, "intra-pbft", SimTime::zero()).drop);
  EXPECT_EQ(inj.fired_counts().at(FaultKind::kDrop), 1u);
}

TEST(FaultInjector, SourceSelectorFiltersByOrdinal) {
  TestNet net;
  FaultInjector inj = net.make("drop(src=ctrl1)");
  EXPECT_TRUE(inj.on_message(net.ctrl1, net.sw0, "REPLY", SimTime::zero()).drop);
  EXPECT_FALSE(inj.on_message(net.ctrl0, net.sw0, "REPLY", SimTime::zero()).drop);
  // Switch ordinal 1 is a different node class than controller 1.
  EXPECT_FALSE(inj.on_message(net.sw1, net.ctrl0, "PKT-IN", SimTime::zero()).drop);
}

TEST(FaultInjector, DestinationSelectorAndKindWildcards) {
  TestNet net;
  FaultInjector inj = net.make("drop(dst=sw)");
  EXPECT_TRUE(inj.on_message(net.ctrl0, net.sw0, "REPLY", SimTime::zero()).drop);
  EXPECT_TRUE(inj.on_message(net.ctrl0, net.sw1, "REPLY", SimTime::zero()).drop);
  EXPECT_FALSE(inj.on_message(net.sw0, net.ctrl0, "PKT-IN", SimTime::zero()).drop);
}

TEST(FaultInjector, WindowGatesActivation) {
  TestNet net;
  FaultInjector inj = net.make("drop(from=100,until=200)");
  EXPECT_FALSE(inj.on_message(net.ctrl0, net.sw0, "x", SimTime::millis(99)).drop);
  EXPECT_TRUE(inj.on_message(net.ctrl0, net.sw0, "x", SimTime::millis(100)).drop);
  EXPECT_TRUE(inj.on_message(net.ctrl0, net.sw0, "x", SimTime::millis(199)).drop);
  EXPECT_FALSE(inj.on_message(net.ctrl0, net.sw0, "x", SimTime::millis(200)).drop);
}

TEST(FaultInjector, PartitionCutsBothDirections) {
  TestNet net;
  FaultInjector inj = net.make("partition(a=ctrl1,b=*,until=500)");
  EXPECT_TRUE(inj.on_message(net.ctrl1, net.sw0, "REPLY", SimTime::zero()).drop);
  EXPECT_TRUE(inj.on_message(net.sw0, net.ctrl1, "PKT-IN", SimTime::zero()).drop);
  EXPECT_TRUE(inj.on_message(net.ctrl0, net.ctrl1, "AGREE", SimTime::zero()).drop);
  // Links not touching ctrl1 survive.
  EXPECT_FALSE(inj.on_message(net.ctrl0, net.sw0, "REPLY", SimTime::zero()).drop);
  // The partition heals after the window.
  EXPECT_FALSE(inj.on_message(net.ctrl1, net.sw0, "REPLY", SimTime::millis(500)).drop);
  EXPECT_EQ(inj.fired_counts().at(FaultKind::kPartition), 3u);
}

TEST(FaultInjector, DelayStaysWithinBounds) {
  TestNet net;
  FaultInjector inj = net.make("delay(min=5,max=30)");
  for (int i = 0; i < 50; ++i) {
    const LinkFaultDecision d =
        inj.on_message(net.ctrl0, net.sw0, "REPLY", SimTime::zero());
    EXPECT_FALSE(d.drop);
    EXPECT_GE(d.extra_delay, SimTime::millis(5));
    EXPECT_LE(d.extra_delay, SimTime::millis(30));
  }
  EXPECT_EQ(inj.fired_counts().at(FaultKind::kDelay), 50u);
}

TEST(FaultInjector, DuplicateEmitsRequestedCopies) {
  TestNet net;
  FaultInjector inj = net.make("dup(copies=3,min=1,max=4)");
  const LinkFaultDecision d =
      inj.on_message(net.ctrl0, net.sw0, "REPLY", SimTime::zero());
  ASSERT_EQ(d.duplicates.size(), 3u);
  for (const SimTime offset : d.duplicates) {
    EXPECT_GE(offset, SimTime::millis(1));
    EXPECT_LE(offset, SimTime::millis(4));
  }
}

TEST(FaultInjector, CorruptMarksMessageOnly) {
  TestNet net;
  FaultInjector inj = net.make("corrupt(cat=REPLY)");
  const LinkFaultDecision d =
      inj.on_message(net.ctrl0, net.sw0, "REPLY", SimTime::zero());
  EXPECT_TRUE(d.corrupt);
  EXPECT_FALSE(d.drop);
  EXPECT_TRUE(d.any());
  ASSERT_EQ(d.fired.size(), 1u);
  EXPECT_EQ(d.fired[0], FaultKind::kCorrupt);
}

TEST(FaultInjector, ClausesCompose) {
  TestNet net;
  FaultInjector inj = net.make("delay(min=2,max=2);dup(copies=1,min=3,max=3)");
  const LinkFaultDecision d =
      inj.on_message(net.ctrl0, net.sw0, "REPLY", SimTime::zero());
  EXPECT_EQ(d.extra_delay, SimTime::millis(2));
  ASSERT_EQ(d.duplicates.size(), 1u);
  EXPECT_EQ(d.duplicates[0], SimTime::millis(3));
  EXPECT_EQ(d.fired.size(), 2u);
}

TEST(FaultInjector, ProbabilityIsNeitherAlwaysNorNever) {
  TestNet net;
  FaultInjector inj = net.make("drop(p=0.5)", /*seed=*/7);
  int dropped = 0;
  for (int i = 0; i < 200; ++i) {
    if (inj.on_message(net.ctrl0, net.sw0, "x", SimTime::zero()).drop) ++dropped;
  }
  EXPECT_GT(dropped, 50);
  EXPECT_LT(dropped, 150);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  TestNet net;
  const std::string spec = "drop(p=0.3);delay(p=0.5,min=1,max=20);dup(p=0.2,copies=2)";
  auto run = [&](std::uint64_t seed) {
    FaultInjector inj = net.make(spec, seed);
    std::vector<std::string> decisions;
    for (int i = 0; i < 100; ++i) {
      const LinkFaultDecision d =
          inj.on_message(net.ctrl0, net.sw0, "REPLY", SimTime::millis(i));
      decisions.push_back(std::to_string(d.drop) + ":" +
                          std::to_string(d.extra_delay.as_micros()) + ":" +
                          std::to_string(d.duplicates.size()));
    }
    return decisions;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace curb::fault
