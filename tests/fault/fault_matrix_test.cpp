// Fault-matrix harness (curb::fault): runs Algorithm 1 end-to-end under each
// fault class with <= f faulty controllers and asserts the three safety
// invariants plus liveness, reproducibility, and the curb-trace anomaly
// cross-check:
//   S1. no two live replicas commit different blocks at the same height
//       (prefix consistency via the hash chain),
//   S2. every config a switch accepted is backed by a committed on-chain
//       transaction for that (switch, request),
//   S3. acceptance always required f+1 matching REPLYs from distinct
//       controllers (exercised adversarially by dup + bogus-reply combos).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "curb/core/simulation.hpp"
#include "curb/fault/injector.hpp"
#include "curb/obs/analysis.hpp"
#include "curb/obs/export.hpp"
#include "curb/opt/cap.hpp"

namespace curb::core {
namespace {

using namespace curb::sim::literals;

CurbOptions faulted_options(const std::string& spec, std::uint64_t seed) {
  CurbOptions opts;
  opts.controller_capacity = 8.0;
  opts.max_cs_delay_ms = opt::CapInstance::kNoLimit;
  opts.op_time_mode = OpTimeMode::kFixed;
  opts.op_fixed_time = 20_ms;
  opts.observability = true;  // anomaly cross-check needs the tracer
  opts.fault_spec = spec;
  opts.fault_seed = seed;
  return opts;
}

/// 8 controllers / 10 switches (f = 1, several PBFT groups), `rounds`
/// PKT-IN rounds under the given fault plan.
struct MatrixRun {
  explicit MatrixRun(const std::string& spec, std::uint64_t seed = 1,
                     std::size_t rounds = 3)
      : sim{net::random_geo_topology(8, 10, 99), faulted_options(spec, seed)} {
    for (std::size_t i = 0; i < rounds; ++i) {
      metrics.push_back(sim.run_packet_in_round());
    }
  }

  [[nodiscard]] CurbNetwork& network() { return sim.network(); }

  /// S1: every pair of live chains agrees on the longest common prefix.
  /// Hash links make the tip-of-prefix comparison equivalent to comparing
  /// every block up to min height.
  void expect_prefix_consistent() {
    const Controller* ref = nullptr;
    for (std::uint32_t c = 0; c < network().num_controllers(); ++c) {
      const Controller& ctrl = network().controller(c);
      if (ctrl.crashed() || !ctrl.has_blockchain()) continue;
      if (ref == nullptr) {
        ref = &ctrl;
        continue;
      }
      const std::uint64_t min_height =
          std::min(ref->blockchain().height(), ctrl.blockchain().height());
      EXPECT_EQ(ctrl.blockchain().at(min_height).hash(),
                ref->blockchain().at(min_height).hash())
          << "controller " << ctrl.id() << " forked from controller " << ref->id()
          << " at or before height " << min_height;
    }
  }

  /// S2: every accepted request appears as a committed transaction on the
  /// tallest live chain.
  void expect_accepted_on_chain() {
    const Controller* tallest = nullptr;
    for (std::uint32_t c = 0; c < network().num_controllers(); ++c) {
      const Controller& ctrl = network().controller(c);
      if (ctrl.crashed() || !ctrl.has_blockchain()) continue;
      if (tallest == nullptr ||
          ctrl.blockchain().height() > tallest->blockchain().height()) {
        tallest = &ctrl;
      }
    }
    ASSERT_NE(tallest, nullptr);
    std::set<std::pair<std::uint32_t, std::uint64_t>> on_chain;
    for (std::uint64_t h = 0; h <= tallest->blockchain().height(); ++h) {
      for (const chain::Transaction& tx : tallest->blockchain().at(h).transactions()) {
        on_chain.insert({tx.switch_id(), tx.request_id()});
      }
    }
    for (std::uint32_t sw = 0; sw < network().num_switches(); ++sw) {
      for (const auto& record : network().switch_node(sw).records()) {
        if (!record.accepted) continue;
        EXPECT_TRUE(on_chain.contains({network().switch_node(sw).id(),
                                       record.request_id}))
            << "switch " << sw << " accepted request " << record.request_id
            << " with no committed on-chain transaction";
      }
    }
  }

  [[nodiscard]] bool fault_anomaly_flagged() {
    const obs::TraceAnalysis analysis =
        obs::TraceAnalysis::from_tracer(network().observatory()->tracer);
    return std::any_of(analysis.findings().begin(), analysis.findings().end(),
                       [](const obs::Finding& f) {
                         return f.detector == "fault_injection";
                       });
  }

  CurbSimulation sim;
  std::vector<RoundMetrics> metrics;
};

struct MatrixCase {
  const char* name;
  const char* spec;
  /// Whether the final round is expected to serve every request (benign
  /// link noise) or merely make progress (partitions, crashes, byzantine).
  bool expect_full_final_round;
};

const MatrixCase kMatrix[] = {
    {"drop-reply-ctrl1", "drop(cat=REPLY,src=ctrl1)", false},
    // Mild jitter: small enough that the per-hop delays cannot accumulate
    // past the s-agent reply timeout, so full service is preserved.
    {"delay-all", "delay(p=0.5,min=1,max=6)", true},
    // Heavy jitter degrades service (replies trail past the reply timeout)
    // but must never break safety.
    {"delay-heavy", "delay(p=0.5,min=5,max=30)", false},
    {"dup-reply", "dup(cat=REPLY,copies=2)", true},
    {"corrupt-reply-ctrl2", "corrupt(cat=REPLY,src=ctrl2)", false},
    {"partition-ctrl1", "partition(a=ctrl1,b=*,until=800)", false},
    {"crash-restart-ctrl1", "crash(node=ctrl1,at=100,down=700)", false},
    {"byz-silent", "byz(node=ctrl1,mode=silent)", false},
    {"byz-lazy", "byz(node=ctrl1,mode=lazy)", false},
    {"byz-equivocate", "byz(node=ctrl1,mode=equivocate)", false},
    {"byz-selective-silent", "byz(node=ctrl1,mode=selective-silent)", false},
    {"byz-stale-view", "byz(node=ctrl1,mode=stale-view)", false},
    {"byz-bogus-reply", "byz(node=ctrl1,mode=bogus-reply)", false},
};

TEST(FaultMatrix, SafetyHoldsUnderEveryFaultClass) {
  for (const MatrixCase& c : kMatrix) {
    SCOPED_TRACE(c.name);
    MatrixRun run{c.spec};
    run.expect_prefix_consistent();
    run.expect_accepted_on_chain();
    // Liveness with <= f faulty: the system keeps serving requests.
    const RoundMetrics& final_round = run.metrics.back();
    EXPECT_GT(final_round.issued, 0u);
    if (c.expect_full_final_round) {
      EXPECT_EQ(final_round.accepted, final_round.issued);
    } else {
      EXPECT_GT(final_round.accepted, 0u);
    }
    // curb-trace cross-check: every injected fault class is flagged.
    EXPECT_TRUE(run.fault_anomaly_flagged())
        << "no fault_injection finding for an injected fault";
  }
}

TEST(FaultMatrix, CleanRunReportsNoFaultAnomalies) {
  MatrixRun run{""};
  EXPECT_EQ(run.network().fault_injector(), nullptr);
  for (const RoundMetrics& m : run.metrics) EXPECT_EQ(m.accepted, m.issued);
  run.expect_prefix_consistent();
  run.expect_accepted_on_chain();
  EXPECT_FALSE(run.fault_anomaly_flagged());
}

TEST(FaultMatrix, LinkFaultsActuallyFire) {
  MatrixRun run{"drop(p=0.2,cat=REPLY);delay(p=0.3,min=5,max=40)"};
  const fault::FaultInjector* injector = run.network().fault_injector();
  ASSERT_NE(injector, nullptr);
  const auto& counts = injector->fired_counts();
  EXPECT_GT(counts.at(fault::FaultKind::kDrop), 0u);
  EXPECT_GT(counts.at(fault::FaultKind::kDelay), 0u);
}

TEST(FaultMatrix, DuplicatedBogusRepliesCannotReachQuorum) {
  // A byzantine controller sends corrupted configs AND the network
  // duplicates its REPLYs threefold: replays from one controller must never
  // stack into the f+1 quorum, so every accepted config is the honest one
  // and stays backed by the chain.
  MatrixRun run{"byz(node=ctrl1,mode=bogus-reply);dup(cat=REPLY,src=ctrl1,copies=3)"};
  run.expect_prefix_consistent();
  run.expect_accepted_on_chain();
  EXPECT_GT(run.metrics.back().accepted, 0u);
}

TEST(FaultMatrix, SameSeedAndSpecReproduceByteIdenticalTraces) {
  const std::string spec = "drop(p=0.3,cat=REPLY);delay(p=0.3,min=1,max=20)";
  auto run_trace = [&spec] {
    MatrixRun run{spec, /*seed=*/7, /*rounds=*/2};
    std::ostringstream jsonl;
    obs::write_spans_jsonl(run.network().observatory()->tracer, jsonl);
    return std::move(jsonl).str();
  };
  const std::string first = run_trace();
  const std::string second = run_trace();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

}  // namespace
}  // namespace curb::core
