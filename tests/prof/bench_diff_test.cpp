// Tests for the curb-prof regression gate: the JSON parser, the
// BENCH_results.json flattening, and perf_diff threshold semantics.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "curb/prof/bench_diff.hpp"

namespace prof = curb::prof;

namespace {

std::vector<prof::BenchEntry> entries_from(const std::string& text) {
  std::istringstream in{text};
  return prof::parse_bench_json(in);
}

const std::string kBaseline = R"([
{"bench":"fig5_pktin","params":{"sweep":"switches","switches":"4","f":"1"},
 "metrics":{"latency_ms":244.5,"tps_parallel":55.0,"messages":1200.0},
 "e2e_us":{"count":20,"p50_us":244000.0,"p99_us":251000.0},
 "phases":[{"phase":"dispatch","mean_us":12000.0,"share_pct":5.0},
           {"phase":"consensus","mean_us":180000.0,"share_pct":74.0}],
 "host":{"wall_ms":150.0,"events_per_sec":90000.0,
         "components":[{"component":"crypto","share_pct":40.0}]}}
])";

TEST(JsonParser, ParsesScalarsAndNesting) {
  const prof::JsonValue doc =
      prof::parse_json(R"({"a":1.5,"b":[true,null,"x\n"],"c":{"d":-2e3}})");
  ASSERT_EQ(doc.type, prof::JsonValue::Type::kObject);
  EXPECT_DOUBLE_EQ(doc.find("a")->number, 1.5);
  const prof::JsonValue* b = doc.find("b");
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_EQ(b->array[1].type, prof::JsonValue::Type::kNull);
  EXPECT_EQ(b->array[2].str, "x\n");
  EXPECT_DOUBLE_EQ(doc.find("c")->find("d")->number, -2000.0);
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW(prof::parse_json("{"), std::runtime_error);
  EXPECT_THROW(prof::parse_json(R"({"a":})"), std::runtime_error);
  EXPECT_THROW(prof::parse_json(R"({"a":1} extra)"), std::runtime_error);
  EXPECT_THROW(prof::parse_json(R"(["unterminated)"), std::runtime_error);
  EXPECT_THROW(prof::parse_json("{\"a\":1,}"), std::runtime_error);
}

TEST(BenchEntries, FlattensMetricsPhasesAndHost) {
  const auto entries = entries_from(kBaseline);
  ASSERT_EQ(entries.size(), 1u);
  const prof::BenchEntry& e = entries[0];
  EXPECT_EQ(e.bench, "fig5_pktin");
  EXPECT_EQ(e.key(), "fig5_pktin sweep=switches switches=4 f=1");
  EXPECT_DOUBLE_EQ(e.values.at("metrics.latency_ms"), 244.5);
  EXPECT_DOUBLE_EQ(e.values.at("e2e_us.p99_us"), 251000.0);
  EXPECT_DOUBLE_EQ(e.values.at("phases.consensus.share_pct"), 74.0);
  EXPECT_DOUBLE_EQ(e.values.at("host.wall_ms"), 150.0);
  EXPECT_DOUBLE_EQ(e.values.at("host.components.crypto.share_pct"), 40.0);
}

TEST(BenchEntries, RejectsNonArrayAndNamelessEntries) {
  EXPECT_THROW(entries_from(R"({"bench":"x"})"), std::runtime_error);
  EXPECT_THROW(entries_from(R"([{"params":{}}])"), std::runtime_error);
}

TEST(HigherIsBetter, ClassifiesMetricNames) {
  EXPECT_TRUE(prof::higher_is_better("metrics.tps_parallel"));
  EXPECT_TRUE(prof::higher_is_better("metrics.throughput"));
  EXPECT_TRUE(prof::higher_is_better("host.events_per_sec"));
  EXPECT_FALSE(prof::higher_is_better("metrics.latency_ms"));
  EXPECT_FALSE(prof::higher_is_better("e2e_us.p99_us"));
}

TEST(PerfDiff, SelfDiffIsClean) {
  const auto base = entries_from(kBaseline);
  const prof::PerfDiffResult diff = prof::perf_diff(base, base);
  EXPECT_EQ(diff.entries_compared, 1u);
  EXPECT_GT(diff.metrics_compared, 0u);
  EXPECT_TRUE(diff.deltas.empty());
  EXPECT_EQ(diff.regressions(), 0u);
  EXPECT_TRUE(diff.only_base.empty());
  EXPECT_TRUE(diff.only_candidate.empty());
}

std::vector<prof::BenchEntry> with_value(const std::string& metric, double value) {
  auto entries = entries_from(kBaseline);
  entries[0].values[metric] = value;
  return entries;
}

TEST(PerfDiff, LatencyIncreaseRegresses) {
  const auto base = entries_from(kBaseline);
  const auto cand = with_value("metrics.latency_ms", 244.5 * 1.25);  // +25%
  const prof::PerfDiffResult diff = prof::perf_diff(base, cand);
  ASSERT_EQ(diff.deltas.size(), 1u);
  EXPECT_EQ(diff.deltas[0].metric, "metrics.latency_ms");
  EXPECT_EQ(diff.deltas[0].status, prof::MetricDelta::Status::kRegressed);
  EXPECT_NEAR(diff.deltas[0].delta_pct, 25.0, 0.01);
  EXPECT_EQ(diff.regressions(), 1u);
}

TEST(PerfDiff, ThroughputDropRegressesAndRiseImproves) {
  const auto base = entries_from(kBaseline);
  const auto drop = with_value("metrics.tps_parallel", 55.0 * 0.7);
  EXPECT_EQ(prof::perf_diff(base, drop).regressions(), 1u);
  const auto rise = with_value("metrics.tps_parallel", 55.0 * 1.5);
  const prof::PerfDiffResult improved = prof::perf_diff(base, rise);
  EXPECT_EQ(improved.regressions(), 0u);
  EXPECT_EQ(improved.improvements(), 1u);
}

TEST(PerfDiff, LatencyDecreaseImproves) {
  const auto base = entries_from(kBaseline);
  const auto cand = with_value("metrics.latency_ms", 244.5 * 0.5);
  const prof::PerfDiffResult diff = prof::perf_diff(base, cand);
  EXPECT_EQ(diff.regressions(), 0u);
  EXPECT_EQ(diff.improvements(), 1u);
}

TEST(PerfDiff, HostMetricsOnlyWarn) {
  const auto base = entries_from(kBaseline);
  // wall_ms doubles: way past the default 50% host threshold, but host
  // metrics measure the machine, not the protocol — never a hard failure.
  const auto cand = with_value("host.wall_ms", 300.0);
  const prof::PerfDiffResult diff = prof::perf_diff(base, cand);
  ASSERT_EQ(diff.deltas.size(), 1u);
  EXPECT_EQ(diff.deltas[0].status, prof::MetricDelta::Status::kWarned);
  EXPECT_EQ(diff.regressions(), 0u);
  EXPECT_EQ(diff.warnings(), 1u);
}

TEST(PerfDiff, HostThresholdIsLooser) {
  const auto base = entries_from(kBaseline);
  // +30% host wall time: over the 10% virtual threshold but under the 50%
  // host threshold — not reported at all.
  const auto cand = with_value("host.wall_ms", 195.0);
  EXPECT_TRUE(prof::perf_diff(base, cand).deltas.empty());
}

TEST(PerfDiff, WarnOnlyDowngradesRegressions) {
  const auto base = entries_from(kBaseline);
  const auto cand = with_value("metrics.latency_ms", 400.0);
  prof::PerfDiffOptions options;
  options.warn_only = true;
  const prof::PerfDiffResult diff = prof::perf_diff(base, cand, options);
  ASSERT_EQ(diff.deltas.size(), 1u);
  EXPECT_EQ(diff.deltas[0].status, prof::MetricDelta::Status::kWarned);
  EXPECT_EQ(diff.regressions(), 0u);
}

TEST(PerfDiff, ThresholdAndFloorSuppressSmallDeltas) {
  const auto base = entries_from(kBaseline);
  // +5% latency: inside the default 10% band.
  EXPECT_TRUE(prof::perf_diff(base, with_value("metrics.latency_ms", 256.7)).deltas.empty());
  // Large relative change on a tiny value, suppressed by the absolute floor.
  auto zero_base = entries_from(kBaseline);
  zero_base[0].values["metrics.anomalies"] = 0.001;
  auto zero_cand = zero_base;
  zero_cand[0].values["metrics.anomalies"] = 0.003;
  prof::PerfDiffOptions options;
  options.floor = 0.01;
  EXPECT_TRUE(prof::perf_diff(zero_base, zero_cand, options).deltas.empty());
}

TEST(PerfDiff, ZeroBaseUsesAbsoluteDelta) {
  auto base = entries_from(kBaseline);
  base[0].values["metrics.anomalies"] = 0.0;
  auto cand = base;
  cand[0].values["metrics.anomalies"] = 0.5;  // 0 -> 0.5: +50% vs denominator 1
  const prof::PerfDiffResult diff = prof::perf_diff(base, cand);
  ASSERT_EQ(diff.deltas.size(), 1u);
  EXPECT_NEAR(diff.deltas[0].delta_pct, 50.0, 0.01);
  EXPECT_EQ(diff.deltas[0].status, prof::MetricDelta::Status::kRegressed);
}

TEST(PerfDiff, ReportsUnmatchedEntries) {
  const auto base = entries_from(kBaseline);
  auto cand = entries_from(kBaseline);
  cand[0].params[1].second = "34";  // different switches value -> different key
  const prof::PerfDiffResult diff = prof::perf_diff(base, cand);
  EXPECT_EQ(diff.entries_compared, 0u);
  ASSERT_EQ(diff.only_base.size(), 1u);
  ASSERT_EQ(diff.only_candidate.size(), 1u);
}

TEST(PerfDiff, JsonOutputParsesBack) {
  const auto base = entries_from(kBaseline);
  const auto cand = with_value("metrics.latency_ms", 400.0);
  const prof::PerfDiffResult diff = prof::perf_diff(base, cand);
  std::ostringstream out;
  prof::write_perf_diff_json(diff, out);
  const prof::JsonValue doc = prof::parse_json(out.str());
  EXPECT_DOUBLE_EQ(doc.find("regressions")->number, 1.0);
  ASSERT_EQ(doc.find("deltas")->array.size(), 1u);
  EXPECT_EQ(doc.find("deltas")->array[0].find("metric")->str, "metrics.latency_ms");

  std::ostringstream text;
  prof::write_perf_diff_text(diff, text);
  EXPECT_NE(text.str().find("REGRESSED"), std::string::npos);
}

}  // namespace
