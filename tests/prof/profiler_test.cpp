// Tests for curb::prof: attribution-tree invariants, the disabled path, the
// collapsed-stack / Chrome exporters, and the report renderer.

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "curb/prof/bench_diff.hpp"
#include "curb/prof/export.hpp"
#include "curb/prof/profiler.hpp"

namespace prof = curb::prof;

namespace {

void spin_ns(std::uint64_t ns) {
  const std::uint64_t start = prof::now_ns();
  while (prof::now_ns() - start < ns) {
  }
}

TEST(Profiler, NoProfilerInstalledByDefault) {
  EXPECT_EQ(prof::thread_profiler(), nullptr);
}

TEST(Profiler, DisabledScopesAreNoOps) {
  // Without an installed profiler a Scope must not record anything and must
  // not require one: this is the zero-cost-when-off contract every hot path
  // relies on (same discipline as a null obs::Observatory*).
  ASSERT_EQ(prof::thread_profiler(), nullptr);
  for (int i = 0; i < 1000; ++i) {
    const prof::Scope scope{"crypto.sign"};
  }
  prof::Profiler probe;
  EXPECT_EQ(probe.total_ns(), 0u);
  EXPECT_EQ(probe.nodes().size(), 1u);  // just the synthetic root
  EXPECT_EQ(probe.depth(), 0u);
}

TEST(Profiler, SessionInstallsAndUninstalls) {
  prof::Profiler profiler;
  {
    const prof::Session session{profiler};
    EXPECT_EQ(prof::thread_profiler(), &profiler);
  }
  EXPECT_EQ(prof::thread_profiler(), nullptr);
}

TEST(Profiler, RecordsCallsAndNesting) {
  prof::Profiler profiler;
  {
    const prof::Session session{profiler};
    for (int i = 0; i < 3; ++i) {
      const prof::Scope outer{"bft.pbft_msg"};
      const prof::Scope inner{"crypto.verify"};
    }
    {
      const prof::Scope other{"crypto.verify"};
    }
  }
  EXPECT_EQ(profiler.calls("bft.pbft_msg"), 3u);
  // Same label in two contexts: nested under bft.pbft_msg and at top level.
  EXPECT_EQ(profiler.calls("crypto.verify"), 4u);
  std::size_t verify_nodes = 0;
  for (const auto& node : profiler.nodes()) {
    if (node.label == "crypto.verify") ++verify_nodes;
  }
  EXPECT_EQ(verify_nodes, 2u);
  EXPECT_EQ(profiler.depth(), 0u);
}

TEST(Profiler, ExclusiveNeverExceedsInclusive) {
  prof::Profiler profiler;
  {
    const prof::Session session{profiler};
    const prof::Scope outer{"sim.event"};
    spin_ns(200'000);
    {
      const prof::Scope inner{"crypto.sha256"};
      spin_ns(200'000);
    }
    {
      const prof::Scope inner{"bus.deliver"};
      spin_ns(200'000);
    }
  }
  const auto& nodes = profiler.nodes();
  std::uint64_t exclusive_sum = 0;
  for (std::uint32_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LE(profiler.exclusive_ns(i), nodes[i].inclusive_ns) << nodes[i].label;
    std::uint64_t child_sum = 0;
    for (const std::uint32_t c : nodes[i].children) child_sum += nodes[c].inclusive_ns;
    EXPECT_LE(child_sum, nodes[i].inclusive_ns) << nodes[i].label;
    exclusive_sum += profiler.exclusive_ns(i);
  }
  // Total measured time is exactly the partition into exclusive slices.
  EXPECT_EQ(exclusive_sum, profiler.total_ns());
  EXPECT_GT(profiler.total_ns(), 0u);
}

TEST(Profiler, StackBalancedAfterException) {
  prof::Profiler profiler;
  const prof::Session session{profiler};
  try {
    const prof::Scope outer{"sim.event"};
    const prof::Scope middle{"bus.deliver"};
    const prof::Scope inner{"bft.pbft_msg"};
    throw std::runtime_error{"boom"};
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(profiler.depth(), 0u);
  // All three frames were closed by unwinding and recorded one call each.
  EXPECT_EQ(profiler.calls("sim.event"), 1u);
  EXPECT_EQ(profiler.calls("bus.deliver"), 1u);
  EXPECT_EQ(profiler.calls("bft.pbft_msg"), 1u);
  // The profiler stays usable after the unwind.
  {
    const prof::Scope again{"sim.event"};
  }
  EXPECT_EQ(profiler.calls("sim.event"), 2u);
  EXPECT_EQ(profiler.depth(), 0u);
}

TEST(Profiler, ComponentAggregation) {
  prof::Profiler profiler;
  {
    const prof::Session session{profiler};
    {
      const prof::Scope a{"crypto.sign"};
      spin_ns(100'000);
    }
    {
      const prof::Scope b{"crypto.verify"};
      spin_ns(100'000);
    }
    {
      const prof::Scope c{"solver.cap"};
      spin_ns(100'000);
    }
  }
  const auto by_component = profiler.exclusive_by_component();
  ASSERT_EQ(by_component.size(), 2u);
  EXPECT_GT(by_component.at("crypto"), 0u);
  EXPECT_GT(by_component.at("solver"), 0u);
  std::uint64_t sum = 0;
  for (const auto& [component, ns] : by_component) sum += ns;
  EXPECT_EQ(sum, profiler.total_ns());
}

TEST(ProfExport, CollapsedRoundTrip) {
  prof::Profiler profiler;
  {
    const prof::Session session{profiler};
    const prof::Scope outer{"sim.event"};
    spin_ns(100'000);
    const prof::Scope inner{"crypto.sha256"};
    spin_ns(100'000);
  }
  std::ostringstream out;
  prof::write_collapsed(profiler, out);
  std::istringstream in{out.str()};
  const auto lines = prof::parse_collapsed(in);
  ASSERT_EQ(lines.size(), 2u);
  std::uint64_t total = 0;
  for (const auto& line : lines) {
    ASSERT_FALSE(line.frames.empty());
    total += line.value;
  }
  EXPECT_EQ(total, profiler.total_ns());
  // The nested line carries the full root-to-leaf path.
  bool found_nested = false;
  for (const auto& line : lines) {
    if (line.frames.size() == 2) {
      EXPECT_EQ(line.frames[0], "sim.event");
      EXPECT_EQ(line.frames[1], "crypto.sha256");
      found_nested = true;
    }
  }
  EXPECT_TRUE(found_nested);
}

TEST(ProfExport, EmptyProfileEmitsValidOutputs) {
  const prof::Profiler profiler;  // never installed, never entered
  std::ostringstream collapsed;
  prof::write_collapsed(profiler, collapsed);
  EXPECT_TRUE(collapsed.str().empty());
  std::istringstream in{collapsed.str()};
  EXPECT_TRUE(prof::parse_collapsed(in).empty());

  std::ostringstream chrome;
  prof::write_chrome_profile(profiler, chrome);
  const prof::JsonValue doc = prof::parse_json(chrome.str());
  ASSERT_EQ(doc.type, prof::JsonValue::Type::kObject);
  const prof::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->type, prof::JsonValue::Type::kArray);
  EXPECT_TRUE(events->array.empty());

  // An empty report is still renderable.
  std::ostringstream report;
  prof::write_profile_report({}, report);
  EXPECT_FALSE(report.str().empty());
}

TEST(ProfExport, ChromeProfileIsValidJson) {
  prof::Profiler profiler;
  {
    const prof::Session session{profiler};
    const prof::Scope outer{"sim.event"};
    const prof::Scope inner{"bft.hotstuff_msg"};
    spin_ns(100'000);
  }
  std::ostringstream chrome;
  prof::write_chrome_profile(profiler, chrome);
  const prof::JsonValue doc = prof::parse_json(chrome.str());
  const prof::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  for (const auto& event : events->array) {
    ASSERT_NE(event.find("name"), nullptr);
    ASSERT_NE(event.find("ts"), nullptr);
    ASSERT_NE(event.find("dur"), nullptr);
  }
}

TEST(ProfExport, MalformedCollapsedThrows) {
  std::istringstream no_value{"a;b;c\n"};
  EXPECT_THROW(prof::parse_collapsed(no_value), std::runtime_error);
  std::istringstream bad_value{"a;b not_a_number\n"};
  EXPECT_THROW(prof::parse_collapsed(bad_value), std::runtime_error);
}

TEST(ProfExport, ReportSharesSumToHundred) {
  prof::Profiler profiler;
  {
    const prof::Session session{profiler};
    {
      const prof::Scope a{"crypto.sign"};
      spin_ns(300'000);
    }
    {
      const prof::Scope b{"solver.cap"};
      spin_ns(300'000);
    }
    {
      const prof::Scope c{"sim.event"};
      spin_ns(300'000);
    }
  }
  std::ostringstream out;
  prof::write_collapsed(profiler, out);
  std::istringstream in{out.str()};
  std::ostringstream report;
  prof::write_profile_report(prof::parse_collapsed(in), report);
  const std::string text = report.str();
  EXPECT_NE(text.find("crypto"), std::string::npos);
  EXPECT_NE(text.find("solver"), std::string::npos);
  EXPECT_NE(text.find("sim"), std::string::npos);

  // The component share column must sum to ~100%.
  std::istringstream lines{text};
  std::string line;
  bool in_components = false;
  double share_sum = 0.0;
  while (std::getline(lines, line)) {
    if (line.rfind("component shares", 0) == 0) {
      in_components = true;
      continue;
    }
    if (in_components && line.empty()) break;
    if (!in_components) continue;
    const std::size_t pct = line.rfind('%');
    ASSERT_NE(pct, std::string::npos) << line;
    const std::size_t start = line.rfind(' ', pct);
    share_sum += std::stod(line.substr(start + 1, pct - start - 1));
  }
  EXPECT_NEAR(share_sum, 100.0, 0.1);
}

}  // namespace
