#include "curb/crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

namespace curb::crypto {
namespace {

TEST(Sha256, EmptyStringVector) {
  EXPECT_EQ(to_hex(Sha256::digest("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  EXPECT_EQ(to_hex(Sha256::digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector) {
  EXPECT_EQ(to_hex(Sha256::digest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  const std::string input(1'000'000, 'a');
  EXPECT_EQ(to_hex(Sha256::digest(input)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 55, 56 and 64 bytes cross the padding boundary cases.
  const std::string s55(55, 'x');
  const std::string s56(56, 'x');
  const std::string s64(64, 'x');
  EXPECT_NE(to_hex(Sha256::digest(s55)), to_hex(Sha256::digest(s56)));
  EXPECT_NE(to_hex(Sha256::digest(s56)), to_hex(Sha256::digest(s64)));
  // Incremental must equal one-shot at every boundary.
  for (const auto& s : {s55, s56, s64}) {
    Sha256 inc;
    for (const char c : s) inc.update(std::string_view{&c, 1});
    EXPECT_EQ(inc.finish(), Sha256::digest(s));
  }
}

TEST(Sha256, IncrementalMatchesOneShotOnChunks) {
  const std::string data(1000, 'q');
  Sha256 inc;
  inc.update(std::string_view{data}.substr(0, 10));
  inc.update(std::string_view{data}.substr(10, 100));
  inc.update(std::string_view{data}.substr(110));
  EXPECT_EQ(inc.finish(), Sha256::digest(data));
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update("abc");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DoubleDigestDiffersFromSingle) {
  const std::string data = "block";
  const auto bytes = std::span<const std::uint8_t>{
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()};
  EXPECT_NE(Sha256::double_digest(bytes), Sha256::digest(bytes));
  EXPECT_EQ(Sha256::double_digest(bytes),
            Sha256::digest(std::span<const std::uint8_t>{Sha256::digest(bytes)}));
}

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> data{0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>{data}), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // non-hex
}

TEST(Hex, ShortHexPrefix) {
  Hash256 h{};
  h[0] = 0xde;
  h[1] = 0xad;
  EXPECT_EQ(short_hex(h, 2), "dead");
}

}  // namespace
}  // namespace curb::crypto
