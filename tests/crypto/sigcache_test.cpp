#include "curb/crypto/sigcache.hpp"

#include <gtest/gtest.h>

#include <string>

#include "curb/crypto/secp256k1.hpp"
#include "curb/crypto/sha256.hpp"

namespace curb::crypto {
namespace {

/// The cache is a process-wide singleton; every test must leave it exactly
/// as found (enabled, empty, default capacity) or later tests — and the
/// other suites in this binary — would observe leaked state.
class SigCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SigCache::instance().set_enabled(true);
    SigCache::instance().clear();
  }
  void TearDown() override {
    SigCache::instance().set_enabled(true);
    SigCache::instance().set_capacity(1u << 20);
    SigCache::instance().clear();
  }

  static SigCacheStats stats() { return SigCache::instance().stats(); }
};

TEST_F(SigCacheTest, FirstVerifyMissesSecondHits) {
  const KeyPair key = KeyPair::from_seed("sigcache-a");
  const Hash256 digest = Sha256::digest("hello");
  const Signature sig = key.sign(digest);

  const SigCacheStats before = stats();
  EXPECT_TRUE(verify_cached(key.public_key(), digest, sig));
  SigCacheStats after = stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.entries, before.entries + 1);

  EXPECT_TRUE(verify_cached(key.public_key(), digest, sig));
  EXPECT_TRUE(verify_cached(key.public_key(), digest, sig));
  after = stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits + 2);
  EXPECT_EQ(after.entries, before.entries + 1);
}

TEST_F(SigCacheTest, NegativeVerdictsAreCached) {
  const KeyPair key = KeyPair::from_seed("sigcache-b");
  const KeyPair other = KeyPair::from_seed("sigcache-c");
  const Hash256 digest = Sha256::digest("payload");
  const Signature wrong = other.sign(digest);  // valid sig, wrong key

  const SigCacheStats before = stats();
  EXPECT_FALSE(verify_cached(key.public_key(), digest, wrong));
  EXPECT_FALSE(verify_cached(key.public_key(), digest, wrong));
  const SigCacheStats after = stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits + 1);  // the replayed bad sig hit
}

TEST_F(SigCacheTest, DigestKeyingSeparatesTuples) {
  const KeyPair key = KeyPair::from_seed("sigcache-d");
  const Hash256 d1 = Sha256::digest("one");
  const Hash256 d2 = Sha256::digest("two");
  const Signature s1 = key.sign(d1);

  EXPECT_TRUE(verify_cached(key.public_key(), d1, s1));
  const SigCacheStats mid = stats();
  // Same signature against a different digest is a different tuple: it must
  // miss (and verify false), never reuse the positive verdict. This is the
  // corrupt-fault guarantee — corrupted bytes imply a new digest, so a
  // tampered payload can never hit the pristine entry.
  EXPECT_FALSE(verify_cached(key.public_key(), d2, s1));
  const SigCacheStats after = stats();
  EXPECT_EQ(after.misses, mid.misses + 1);
  EXPECT_EQ(after.hits, mid.hits);
}

TEST_F(SigCacheTest, CapacityTriggersWholesaleClear) {
  SigCache::instance().set_capacity(2);
  const KeyPair key = KeyPair::from_seed("sigcache-e");
  const SigCacheStats before = stats();
  for (int i = 0; i < 3; ++i) {
    const Hash256 digest = Sha256::digest("entry-" + std::to_string(i));
    EXPECT_TRUE(verify_cached(key.public_key(), digest, key.sign(digest)));
  }
  const SigCacheStats after = stats();
  EXPECT_EQ(after.misses, before.misses + 3);
  EXPECT_EQ(after.evictions, before.evictions + 1);
  // The third insert cleared the two prior entries first.
  EXPECT_EQ(after.entries, 1u);
}

TEST_F(SigCacheTest, DisabledFallsThroughWithoutCaching) {
  SigCache::instance().set_enabled(false);
  EXPECT_FALSE(SigCache::instance().enabled());
  const KeyPair key = KeyPair::from_seed("sigcache-f");
  const Hash256 digest = Sha256::digest("off");
  const Signature sig = key.sign(digest);

  const SigCacheStats before = stats();
  EXPECT_TRUE(verify_cached(key.public_key(), digest, sig));
  EXPECT_TRUE(verify_cached(key.public_key(), digest, sig));
  const SigCacheStats after = stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.entries, before.entries);
}

TEST_F(SigCacheTest, ClearDropsEntriesKeepsCounters) {
  const KeyPair key = KeyPair::from_seed("sigcache-g");
  const Hash256 digest = Sha256::digest("clear");
  const Signature sig = key.sign(digest);
  EXPECT_TRUE(verify_cached(key.public_key(), digest, sig));
  const SigCacheStats before = stats();
  EXPECT_GE(before.entries, 1u);

  SigCache::instance().clear();
  const SigCacheStats cleared = stats();
  EXPECT_EQ(cleared.entries, 0u);
  EXPECT_EQ(cleared.misses, before.misses);  // counters accumulate

  // Re-verifying after clear is a miss again, with the same verdict.
  EXPECT_TRUE(verify_cached(key.public_key(), digest, sig));
  EXPECT_EQ(stats().misses, before.misses + 1);
}

}  // namespace
}  // namespace curb::crypto
