#include "curb/crypto/secp256k1.hpp"

#include <gtest/gtest.h>

namespace curb::crypto {
namespace {

namespace ec = secp256k1;

TEST(Secp256k1, GeneratorIsOnCurve) {
  EXPECT_TRUE(ec::on_curve(ec::generator()));
}

TEST(Secp256k1, TwoGMatchesKnownVector) {
  const auto two_g = ec::point_double(ec::JacobianPoint::from_affine(ec::generator()))
                         .to_affine();
  EXPECT_EQ(two_g.x.to_hex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(two_g.y.to_hex(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(Secp256k1, ScalarMulMatchesRepeatedAddition) {
  const auto g = ec::JacobianPoint::from_affine(ec::generator());
  ec::JacobianPoint acc = ec::JacobianPoint::infinity();
  for (int i = 0; i < 5; ++i) acc = ec::point_add(acc, g);
  EXPECT_EQ(ec::scalar_mul(U256{5}, g).to_affine(), acc.to_affine());
}

TEST(Secp256k1, ScalarMulByOrderIsInfinity) {
  const auto g = ec::JacobianPoint::from_affine(ec::generator());
  EXPECT_TRUE(ec::scalar_mul(ec::group_order(), g).is_infinity());
}

TEST(Secp256k1, AdditionIsCommutative) {
  const auto g = ec::JacobianPoint::from_affine(ec::generator());
  const auto p = ec::scalar_mul(U256{123}, g);
  const auto q = ec::scalar_mul(U256{456}, g);
  EXPECT_EQ(ec::point_add(p, q).to_affine(), ec::point_add(q, p).to_affine());
}

TEST(Secp256k1, AddingInverseGivesInfinity) {
  const auto g = ec::JacobianPoint::from_affine(ec::generator());
  // (-1)G = (n-1)G; G + (n-1)G must be infinity.
  U256 n_minus_1;
  U256::sub_with_borrow(ec::group_order(), U256{1}, n_minus_1);
  const auto neg_g = ec::scalar_mul(n_minus_1, g);
  EXPECT_TRUE(ec::point_add(g, neg_g).is_infinity());
}

TEST(Secp256k1, InfinityIsIdentity) {
  const auto g = ec::JacobianPoint::from_affine(ec::generator());
  const auto inf = ec::JacobianPoint::infinity();
  EXPECT_EQ(ec::point_add(g, inf).to_affine(), g.to_affine());
  EXPECT_EQ(ec::point_add(inf, g).to_affine(), g.to_affine());
  EXPECT_TRUE(ec::point_double(inf).is_infinity());
}

TEST(Secp256k1, FieldInverse) {
  const U256 a = U256::from_hex("deadbeefcafebabe");
  EXPECT_EQ(ec::fe_mul(a, ec::fe_inv(a)), U256{1});
  EXPECT_THROW((void)ec::fe_inv(U256{}), std::domain_error);
}

TEST(Secp256k1, FieldMulAgainstGenericModMul) {
  const U256 a = U256::from_hex("123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef0");
  const U256 b = U256::from_hex("fedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543210");
  EXPECT_EQ(ec::fe_mul(a, b), U256::mul_mod(a, b, ec::field_prime()));
}

TEST(KeyPair, DeterministicFromSeed) {
  const KeyPair a = KeyPair::from_seed("controller-0");
  const KeyPair b = KeyPair::from_seed("controller-0");
  const KeyPair c = KeyPair::from_seed("controller-1");
  EXPECT_EQ(a.public_key(), b.public_key());
  EXPECT_NE(a.public_key(), c.public_key());
}

TEST(KeyPair, PublicKeyIsOnCurve) {
  const KeyPair kp = KeyPair::from_seed("any-seed");
  EXPECT_TRUE(ec::on_curve(kp.public_key().point));
}

TEST(KeyPair, RejectsOutOfRangePrivate) {
  EXPECT_THROW((void)KeyPair::from_private(U256{}), std::invalid_argument);
  EXPECT_THROW((void)KeyPair::from_private(ec::group_order()), std::invalid_argument);
}

TEST(Ecdsa, SignVerifyRoundTrip) {
  const KeyPair kp = KeyPair::from_seed("signer");
  const Hash256 digest = Sha256::digest("a flow-table update transaction");
  const Signature sig = kp.sign(digest);
  EXPECT_TRUE(verify(kp.public_key(), digest, sig));
}

TEST(Ecdsa, SignIsDeterministic) {
  const KeyPair kp = KeyPair::from_seed("signer");
  const Hash256 digest = Sha256::digest("msg");
  EXPECT_EQ(kp.sign(digest), kp.sign(digest));
}

TEST(Ecdsa, RejectsTamperedMessage) {
  const KeyPair kp = KeyPair::from_seed("signer");
  const Signature sig = kp.sign(Sha256::digest("original"));
  EXPECT_FALSE(verify(kp.public_key(), Sha256::digest("tampered"), sig));
}

TEST(Ecdsa, RejectsWrongKey) {
  const KeyPair alice = KeyPair::from_seed("alice");
  const KeyPair bob = KeyPair::from_seed("bob");
  const Hash256 digest = Sha256::digest("msg");
  EXPECT_FALSE(verify(bob.public_key(), digest, alice.sign(digest)));
}

TEST(Ecdsa, RejectsTamperedSignature) {
  const KeyPair kp = KeyPair::from_seed("signer");
  const Hash256 digest = Sha256::digest("msg");
  Signature sig = kp.sign(digest);
  sig.s = U256::add_mod(sig.s, U256{1}, ec::group_order());
  EXPECT_FALSE(verify(kp.public_key(), digest, sig));
}

TEST(Ecdsa, RejectsZeroSignatureComponents) {
  const KeyPair kp = KeyPair::from_seed("signer");
  const Hash256 digest = Sha256::digest("msg");
  EXPECT_FALSE(verify(kp.public_key(), digest, Signature{U256{}, U256{1}}));
  EXPECT_FALSE(verify(kp.public_key(), digest, Signature{U256{1}, U256{}}));
  EXPECT_FALSE(verify(kp.public_key(), digest, Signature{ec::group_order(), U256{1}}));
}

TEST(Signature, BytesRoundTrip) {
  const KeyPair kp = KeyPair::from_seed("signer");
  const Signature sig = kp.sign(Sha256::digest("msg"));
  const auto bytes = sig.to_bytes();
  EXPECT_EQ(Signature::from_bytes(std::span<const std::uint8_t, 64>{bytes}), sig);
}

TEST(PublicKey, CompressedRoundTrip) {
  for (const char* seed : {"a", "b", "c", "d", "e"}) {
    const KeyPair kp = KeyPair::from_seed(seed);
    const auto bytes = kp.public_key().to_bytes();
    const auto restored = PublicKey::from_bytes(std::span<const std::uint8_t, 33>{bytes});
    ASSERT_TRUE(restored.has_value()) << "seed " << seed;
    EXPECT_EQ(*restored, kp.public_key());
  }
}

TEST(PublicKey, RejectsBadPrefix) {
  std::array<std::uint8_t, 33> bytes{};
  bytes[0] = 0x05;
  EXPECT_FALSE(PublicKey::from_bytes(std::span<const std::uint8_t, 33>{bytes}).has_value());
}

TEST(PublicKey, HexIdIsStable) {
  const KeyPair kp = KeyPair::from_seed("id");
  EXPECT_EQ(kp.public_key().to_hex().size(), 66u);
  EXPECT_EQ(kp.public_key().to_hex(), kp.public_key().to_hex());
}

}  // namespace
}  // namespace curb::crypto
