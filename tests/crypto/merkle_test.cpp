#include "curb/crypto/merkle.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "curb/crypto/sha256.hpp"

namespace curb::crypto {
namespace {

std::vector<Hash256> make_leaves(std::size_t n) {
  std::vector<Hash256> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256::digest("leaf-" + std::to_string(i)));
  }
  return leaves;
}

TEST(Merkle, EmptyTreeHasZeroRoot) {
  const MerkleTree tree{{}};
  EXPECT_EQ(tree.root(), Hash256{});
  EXPECT_EQ(tree.leaf_count(), 0u);
}

TEST(Merkle, SingleLeafRootIsLeaf) {
  const auto leaves = make_leaves(1);
  const MerkleTree tree{leaves};
  EXPECT_EQ(tree.root(), leaves[0]);
}

TEST(Merkle, TwoLeavesRootIsCombine) {
  const auto leaves = make_leaves(2);
  const MerkleTree tree{leaves};
  EXPECT_EQ(tree.root(), MerkleTree::combine(leaves[0], leaves[1]));
}

TEST(Merkle, OddLeafCountDuplicatesLast) {
  const auto leaves = make_leaves(3);
  const MerkleTree tree{leaves};
  const Hash256 left = MerkleTree::combine(leaves[0], leaves[1]);
  const Hash256 right = MerkleTree::combine(leaves[2], leaves[2]);
  EXPECT_EQ(tree.root(), MerkleTree::combine(left, right));
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto leaves = make_leaves(8);
  const Hash256 original = MerkleTree::root_of(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i][0] ^= 0x01;
    EXPECT_NE(MerkleTree::root_of(mutated), original) << "leaf " << i;
  }
}

TEST(Merkle, OrderMatters) {
  auto leaves = make_leaves(4);
  const Hash256 original = MerkleTree::root_of(leaves);
  std::swap(leaves[1], leaves[2]);
  EXPECT_NE(MerkleTree::root_of(leaves), original);
}

class MerkleProofTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofTest, EveryLeafProvesInclusion) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const MerkleTree tree{leaves};
  for (std::size_t i = 0; i < n; ++i) {
    const auto proof = tree.prove(i);
    EXPECT_TRUE(MerkleTree::verify(leaves[i], proof, tree.root())) << "leaf " << i;
  }
}

TEST_P(MerkleProofTest, ProofFailsForWrongLeaf) {
  const std::size_t n = GetParam();
  if (n < 2) GTEST_SKIP();
  const auto leaves = make_leaves(n);
  const MerkleTree tree{leaves};
  const auto proof = tree.prove(0);
  EXPECT_FALSE(MerkleTree::verify(leaves[1], proof, tree.root()));
}

TEST_P(MerkleProofTest, ProofFailsAgainstWrongRoot) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const MerkleTree tree{leaves};
  Hash256 wrong_root = tree.root();
  wrong_root[5] ^= 0xff;
  EXPECT_FALSE(MerkleTree::verify(leaves[0], tree.prove(0), wrong_root));
}

INSTANTIATE_TEST_SUITE_P(LeafCounts, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 33, 100));

TEST(Merkle, ProveOutOfRangeThrows) {
  const MerkleTree tree{make_leaves(4)};
  EXPECT_THROW(tree.prove(4), std::out_of_range);
}

TEST(Merkle, TamperedProofFails) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree{leaves};
  auto proof = tree.prove(3);
  proof[1].sibling[0] ^= 0x80;
  EXPECT_FALSE(MerkleTree::verify(leaves[3], proof, tree.root()));
}

}  // namespace
}  // namespace curb::crypto
