#include "curb/crypto/u256.hpp"

#include <gtest/gtest.h>

namespace curb::crypto {
namespace {

TEST(U256, HexRoundTrip) {
  const U256 v = U256::from_hex("0123456789abcdef0123456789abcdeffedcba9876543210ffffffffffffffff");
  EXPECT_EQ(v.to_hex(), "0123456789abcdef0123456789abcdeffedcba9876543210ffffffffffffffff");
}

TEST(U256, FromHexShortValues) {
  EXPECT_EQ(U256::from_hex("ff"), U256{0xff});
  EXPECT_EQ(U256::from_hex(""), U256{});
  EXPECT_THROW((void)U256::from_hex(std::string(65, 'f')), std::invalid_argument);
  EXPECT_THROW((void)U256::from_hex("xy"), std::invalid_argument);
}

TEST(U256, BytesRoundTrip) {
  const U256 v = U256::from_hex("00ff00ff00ff00ff11223344556677889900aabbccddeeff0102030405060708");
  EXPECT_EQ(U256::from_bytes(std::span<const std::uint8_t, 32>{v.to_bytes()}), v);
}

TEST(U256, Ordering) {
  EXPECT_LT(U256{1}, U256{2});
  EXPECT_LT(U256{0xffffffffffffffffULL}, (U256{0, 1, 0, 0}));
  EXPECT_GT((U256{0, 0, 0, 1}), (U256{0xffffffffffffffffULL, 0xffffffffffffffffULL,
                                      0xffffffffffffffffULL, 0}));
}

TEST(U256, AddWithCarry) {
  U256 out;
  const U256 max{0xffffffffffffffffULL, 0xffffffffffffffffULL, 0xffffffffffffffffULL,
                 0xffffffffffffffffULL};
  EXPECT_TRUE(U256::add_with_carry(max, U256{1}, out));
  EXPECT_TRUE(out.is_zero());
  EXPECT_FALSE(U256::add_with_carry(U256{2}, U256{3}, out));
  EXPECT_EQ(out, U256{5});
}

TEST(U256, SubWithBorrow) {
  U256 out;
  EXPECT_FALSE(U256::sub_with_borrow(U256{5}, U256{3}, out));
  EXPECT_EQ(out, U256{2});
  EXPECT_TRUE(U256::sub_with_borrow(U256{3}, U256{5}, out));  // wraps
}

TEST(U256, CarryPropagatesThroughLimbs) {
  U256 out;
  const U256 a{0xffffffffffffffffULL, 0xffffffffffffffffULL, 0, 0};
  EXPECT_FALSE(U256::add_with_carry(a, U256{1}, out));
  EXPECT_EQ(out, (U256{0, 0, 1, 0}));
}

TEST(U256, MulWideSmall) {
  const auto prod = U256::mul_wide(U256{7}, U256{6});
  EXPECT_EQ(prod[0], 42u);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(prod[i], 0u);
}

TEST(U256, MulWideCrossLimb) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  const U256 a{0xffffffffffffffffULL};
  const auto prod = U256::mul_wide(a, a);
  EXPECT_EQ(prod[0], 1u);
  EXPECT_EQ(prod[1], 0xfffffffffffffffeULL);
  EXPECT_EQ(prod[2], 0u);
}

TEST(U256, Shifts) {
  const U256 one{1};
  EXPECT_EQ((one << 64), (U256{0, 1, 0, 0}));
  EXPECT_EQ((one << 255) >> 255, one);
  EXPECT_EQ((one << 256), U256{});
  EXPECT_EQ((one >> 1), U256{});
  EXPECT_EQ((U256{0, 0, 0, 1} >> 192), one);
  EXPECT_EQ((one << 70) >> 6, (U256{0, 1, 0, 0}));
}

TEST(U256, HighestBit) {
  EXPECT_EQ(U256{}.highest_bit(), -1);
  EXPECT_EQ(U256{1}.highest_bit(), 0);
  EXPECT_EQ((U256{1} << 200).highest_bit(), 200);
}

TEST(U256, BitAccess) {
  const U256 v = U256{1} << 100;
  EXPECT_TRUE(v.bit(100));
  EXPECT_FALSE(v.bit(99));
  EXPECT_FALSE(v.bit(101));
}

TEST(U256, ModularAddSub) {
  const U256 m{97};
  EXPECT_EQ(U256::add_mod(U256{90}, U256{10}, m), U256{3});
  EXPECT_EQ(U256::sub_mod(U256{3}, U256{10}, m), U256{90});
  EXPECT_EQ(U256::sub_mod(U256{10}, U256{3}, m), U256{7});
}

TEST(U256, ModularMul) {
  const U256 m{101};
  EXPECT_EQ(U256::mul_mod(U256{55}, U256{77}, m), U256{55 * 77 % 101});
  // Large operands reduce correctly: (2^255) * 2 mod (2^255+1) == 2^255 - 1... use
  // simpler check vs pow.
  const U256 big = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffff00000000");
  const U256 r = U256::mul_mod(big, big, m);
  EXPECT_LT(r, m);
}

TEST(U256, PowMod) {
  const U256 m{1000000007ULL};
  EXPECT_EQ(U256::pow_mod(U256{2}, U256{10}, m), U256{1024});
  // Fermat's little theorem: a^(p-1) = 1 (mod p)
  EXPECT_EQ(U256::pow_mod(U256{123456}, U256{1000000006ULL}, m), U256{1});
}

TEST(U256, InvModPrime) {
  const U256 p{1000000007ULL};
  const U256 a{987654321ULL};
  const U256 inv = U256::inv_mod_prime(a, p);
  EXPECT_EQ(U256::mul_mod(a, inv, p), U256{1});
  EXPECT_THROW((void)U256::inv_mod_prime(U256{}, p), std::domain_error);
}

TEST(U256, Reduce) {
  EXPECT_EQ(U256::reduce(U256{100}, U256{7}), U256{2});
  EXPECT_EQ(U256::reduce(U256{5}, U256{7}), U256{5});
  EXPECT_THROW((void)U256::reduce(U256{5}, U256{}), std::domain_error);
  const U256 big = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  EXPECT_EQ(U256::reduce(big, U256{2}), U256{1});
}

TEST(U256, ReduceWide) {
  // 2^256 mod 97: 2^256 = (2^48)^5 * 2^16; easier: compute via pow_mod.
  const U256 m{97};
  std::array<std::uint64_t, 8> wide{};
  wide[4] = 1;  // value = 2^256
  EXPECT_EQ(U256::reduce_wide(wide, m), U256::pow_mod(U256{2}, U256{256}, m));
}

class U256ModArith : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(U256ModArith, MulModMatches128BitReference) {
  // Cross-check the shift-add modular multiply against native 128-bit
  // arithmetic on random 64-bit operands and moduli.
  std::uint64_t state = GetParam() * 0x9E3779B97F4A7C15ULL + 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = next();
    const std::uint64_t b = next();
    const std::uint64_t m = next() | 1;  // nonzero modulus
    __extension__ typedef unsigned __int128 u128;
    const std::uint64_t expected =
        static_cast<std::uint64_t>(static_cast<u128>(a % m) * (b % m) % m);
    EXPECT_EQ(U256::mul_mod(U256{a % m}, U256{b % m}, U256{m}), U256{expected})
        << a << " * " << b << " mod " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, U256ModArith, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace curb::crypto
