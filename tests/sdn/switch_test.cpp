#include "curb/sdn/switch.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace curb::sdn {
namespace {

using namespace curb::sim::literals;

struct SwitchFixture {
  SwitchFixture()
      : sw{Switch::Config{.switch_id = 1},
           sim,
           [this](const Packet& p, std::uint64_t buffer_id) {
             packet_ins.push_back({p, buffer_id});
           },
           [this](const Packet& p, std::uint32_t port) { forwarded.push_back({p, port}); },
           [this](const Packet& p) { delivered.push_back(p); }} {}

  FlowEntry forward_rule(std::uint32_t dst, std::uint32_t port) {
    FlowEntry e;
    e.match.dst_host = dst;
    e.action = {FlowAction::Kind::kForward, port};
    e.priority = 10;
    return e;
  }

  sim::Simulator sim;
  std::vector<std::pair<Packet, std::uint64_t>> packet_ins;
  std::vector<std::pair<Packet, std::uint32_t>> forwarded;
  std::vector<Packet> delivered;
  Switch sw;
};

TEST(Switch, TableMissBuffersAndPunts) {
  SwitchFixture f;
  f.sw.receive(Packet{1, 2, 100});
  ASSERT_EQ(f.packet_ins.size(), 1u);
  EXPECT_EQ(f.packet_ins[0].first.id, 100u);
  EXPECT_EQ(f.sw.buffered_packets(), 1u);
  EXPECT_EQ(f.sw.stats().table_misses, 1u);
  EXPECT_TRUE(f.forwarded.empty());
}

TEST(Switch, InstalledRuleForwards) {
  SwitchFixture f;
  f.sw.install({f.forward_rule(2, 7)});
  f.sw.receive(Packet{1, 2, 100});
  ASSERT_EQ(f.forwarded.size(), 1u);
  EXPECT_EQ(f.forwarded[0].second, 7u);
  EXPECT_TRUE(f.packet_ins.empty());
  EXPECT_EQ(f.sw.stats().forwarded, 1u);
}

TEST(Switch, DeliverRuleHandsToHost) {
  SwitchFixture f;
  FlowEntry e;
  e.match.dst_host = 2;
  e.action = {FlowAction::Kind::kDeliver, 0};
  e.priority = 10;
  f.sw.install({e});
  f.sw.receive(Packet{1, 2, 100});
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.sw.stats().delivered, 1u);
}

TEST(Switch, DropRuleDrops) {
  SwitchFixture f;
  FlowEntry e;
  e.match.dst_host = 2;
  e.action = {FlowAction::Kind::kDrop, 0};
  e.priority = 10;
  f.sw.install({e});
  f.sw.receive(Packet{1, 2, 100});
  EXPECT_EQ(f.sw.stats().dropped, 1u);
  EXPECT_TRUE(f.forwarded.empty());
  EXPECT_TRUE(f.packet_ins.empty());
}

TEST(Switch, PacketOutReleasesBufferedPacketThroughNewRule) {
  SwitchFixture f;
  f.sw.receive(Packet{1, 2, 100});
  ASSERT_EQ(f.packet_ins.size(), 1u);
  const std::uint64_t buffer_id = f.packet_ins[0].second;
  // Control plane answers with a FLOW_MOD then PACKET_OUT.
  f.sw.install({f.forward_rule(2, 3)});
  f.sw.packet_out(buffer_id);
  ASSERT_EQ(f.forwarded.size(), 1u);
  EXPECT_EQ(f.forwarded[0].first.id, 100u);
  EXPECT_EQ(f.sw.buffered_packets(), 0u);
}

TEST(Switch, PacketOutWithoutRuleDropsInsteadOfLooping) {
  SwitchFixture f;
  f.sw.receive(Packet{1, 2, 100});
  const std::uint64_t buffer_id = f.packet_ins[0].second;
  f.sw.packet_out(buffer_id);  // still no rule
  EXPECT_EQ(f.sw.stats().dropped, 1u);
  EXPECT_EQ(f.packet_ins.size(), 1u);  // no second PACKET_IN
}

TEST(Switch, PacketOutUnknownBufferIsIgnored) {
  SwitchFixture f;
  EXPECT_NO_THROW(f.sw.packet_out(12345));
}

TEST(Switch, BufferedPacketsExpire) {
  SwitchFixture f;
  f.sw.receive(Packet{1, 2, 100});
  const std::uint64_t buffer_id = f.packet_ins[0].second;
  f.sim.run_until(3_s);  // beyond the 2 s default expiry
  EXPECT_EQ(f.sw.buffered_packets(), 0u);
  EXPECT_EQ(f.sw.stats().buffer_expired, 1u);
  f.sw.install({f.forward_rule(2, 3)});
  f.sw.packet_out(buffer_id);  // late PACKET_OUT: nothing to release
  EXPECT_TRUE(f.forwarded.empty());
}

TEST(Switch, MultipleBufferedPacketsIndependent) {
  SwitchFixture f;
  f.sw.receive(Packet{1, 2, 100});
  f.sw.receive(Packet{1, 3, 101});
  ASSERT_EQ(f.packet_ins.size(), 2u);
  EXPECT_NE(f.packet_ins[0].second, f.packet_ins[1].second);
  f.sw.install({f.forward_rule(2, 4), f.forward_rule(3, 5)});
  f.sw.packet_out(f.packet_ins[1].second);
  f.sw.packet_out(f.packet_ins[0].second);
  ASSERT_EQ(f.forwarded.size(), 2u);
  EXPECT_EQ(f.forwarded[0].first.id, 101u);
  EXPECT_EQ(f.forwarded[1].first.id, 100u);
}

}  // namespace
}  // namespace curb::sdn
