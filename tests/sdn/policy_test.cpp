#include "curb/sdn/policy.hpp"

#include <gtest/gtest.h>

namespace curb::sdn {
namespace {

PolicyRule deny(std::uint32_t src, std::uint32_t dst, std::uint16_t priority = 10) {
  return PolicyRule{src, dst, PolicyRule::Action::kDeny, priority};
}

TEST(PolicyRule, MatchingWithWildcards) {
  const PolicyRule exact = deny(1, 2);
  EXPECT_TRUE(exact.matches(1, 2));
  EXPECT_FALSE(exact.matches(2, 1));
  const PolicyRule any_src = deny(PolicyRule::kAny, 2);
  EXPECT_TRUE(any_src.matches(7, 2));
  EXPECT_FALSE(any_src.matches(7, 3));
  const PolicyRule all{PolicyRule::kAny, PolicyRule::kAny, PolicyRule::Action::kDeny, 0};
  EXPECT_TRUE(all.matches(9, 9));
}

TEST(PolicyRule, SerializeRoundTrip) {
  const PolicyRule rule{3, PolicyRule::kAny, PolicyRule::Action::kAllow, 42};
  EXPECT_EQ(PolicyRule::deserialize(rule.serialize()), rule);
}

TEST(PolicyTable, DefaultIsAllow) {
  const PolicyTable table;
  EXPECT_TRUE(table.allows(1, 2));
}

TEST(PolicyTable, DenyRuleBlocksPair) {
  PolicyTable table;
  table.install(deny(1, 2));
  EXPECT_FALSE(table.allows(1, 2));
  EXPECT_TRUE(table.allows(2, 1));
}

TEST(PolicyTable, HigherPriorityWins) {
  PolicyTable table;
  table.install({PolicyRule::kAny, 2, PolicyRule::Action::kDeny, 10});
  table.install({1, 2, PolicyRule::Action::kAllow, 20});  // carve-out
  EXPECT_TRUE(table.allows(1, 2));   // the allow carve-out wins
  EXPECT_FALSE(table.allows(3, 2));  // everyone else is denied
}

TEST(PolicyTable, InstallSameMatchReplacesAction) {
  PolicyTable table;
  table.install(deny(1, 2));
  EXPECT_FALSE(table.allows(1, 2));
  table.install({1, 2, PolicyRule::Action::kAllow, 10});
  EXPECT_TRUE(table.allows(1, 2));
  EXPECT_EQ(table.size(), 1u);
}

TEST(PolicyTable, RemoveRestoresDefault) {
  PolicyTable table;
  const PolicyRule rule = deny(1, 2);
  table.install(rule);
  EXPECT_EQ(table.remove(rule), 1u);
  EXPECT_TRUE(table.allows(1, 2));
  EXPECT_EQ(table.remove(rule), 0u);
}

TEST(PolicyTable, SerializeRoundTrip) {
  PolicyTable table;
  table.install(deny(1, 2));
  table.install({PolicyRule::kAny, 5, PolicyRule::Action::kAllow, 3});
  EXPECT_EQ(PolicyTable::deserialize(table.serialize()), table);
  EXPECT_EQ(PolicyTable::deserialize(PolicyTable{}.serialize()).size(), 0u);
}

}  // namespace
}  // namespace curb::sdn
