#include "curb/sdn/flow.hpp"

#include <gtest/gtest.h>

namespace curb::sdn {
namespace {

using namespace curb::sim::literals;

FlowEntry forward_to(std::uint32_t dst, std::uint32_t port, std::uint16_t priority = 10) {
  FlowEntry e;
  e.match.dst_host = dst;
  e.action = {FlowAction::Kind::kForward, port};
  e.priority = priority;
  return e;
}

TEST(FlowMatch, WildcardMatchesEverything) {
  const FlowMatch any;
  EXPECT_TRUE(any.matches(Packet{1, 2, 0}));
  EXPECT_TRUE(any.matches(Packet{9, 9, 0}));
  const FlowMatch specific{5};
  EXPECT_TRUE(specific.matches(Packet{1, 5, 0}));
  EXPECT_FALSE(specific.matches(Packet{5, 1, 0}));
}

TEST(FlowEntry, SerializeRoundTrip) {
  FlowEntry e = forward_to(7, 3, 42);
  e.hard_expiry = 1500_ms;
  const auto bytes = e.serialize();
  const FlowEntry restored = FlowEntry::deserialize(bytes);
  EXPECT_TRUE(restored.same_rule(e));
  EXPECT_EQ(restored.hard_expiry, e.hard_expiry);
}

TEST(FlowEntry, ListSerializeRoundTrip) {
  const std::vector<FlowEntry> list{forward_to(1, 2), forward_to(3, 4, 99)};
  const auto bytes = FlowEntry::serialize_list(list);
  const auto restored = FlowEntry::deserialize_list(bytes);
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_TRUE(restored[0].same_rule(list[0]));
  EXPECT_TRUE(restored[1].same_rule(list[1]));
}

TEST(FlowEntry, SameRuleIgnoresCounters) {
  FlowEntry a = forward_to(1, 2);
  FlowEntry b = a;
  b.packet_count = 99;
  EXPECT_TRUE(a.same_rule(b));
  b.priority = 11;
  EXPECT_FALSE(a.same_rule(b));
}

TEST(FlowTable, LookupRespectsPriority) {
  FlowTable t;
  t.install(forward_to(FlowMatch::kAny, 1, 0));  // low-priority wildcard
  t.install(forward_to(5, 2, 10));               // specific, higher priority
  FlowEntry* hit = t.lookup(Packet{0, 5, 1}, sim::SimTime::zero());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action.out_port, 2u);
  hit = t.lookup(Packet{0, 6, 2}, sim::SimTime::zero());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action.out_port, 1u);
}

TEST(FlowTable, LookupBumpsCounters) {
  FlowTable t;
  t.install(forward_to(5, 2));
  (void)t.lookup(Packet{0, 5, 1, 100}, sim::SimTime::zero());
  (void)t.lookup(Packet{0, 5, 2, 200}, sim::SimTime::zero());
  EXPECT_EQ(t.entries()[0].packet_count, 2u);
  EXPECT_EQ(t.entries()[0].byte_count, 300u);
}

TEST(FlowTable, PeekDoesNotMutate) {
  FlowTable t;
  t.install(forward_to(5, 2));
  EXPECT_NE(t.peek(Packet{0, 5, 1}, sim::SimTime::zero()), nullptr);
  EXPECT_EQ(t.entries()[0].packet_count, 0u);
  EXPECT_EQ(t.peek(Packet{0, 9, 1}, sim::SimTime::zero()), nullptr);
}

TEST(FlowTable, InstallReplacesSameMatchAndPriority) {
  FlowTable t;
  t.install(forward_to(5, 2, 10));
  t.install(forward_to(5, 7, 10));  // replaces
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.peek(Packet{0, 5, 1}, sim::SimTime::zero())->action.out_port, 7u);
  t.install(forward_to(5, 9, 20));  // different priority: coexists
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.peek(Packet{0, 5, 1}, sim::SimTime::zero())->action.out_port, 9u);
}

TEST(FlowTable, RemoveByMatch) {
  FlowTable t;
  t.install(forward_to(5, 2, 10));
  t.install(forward_to(5, 3, 20));
  t.install(forward_to(6, 4, 10));
  EXPECT_EQ(t.remove(FlowMatch{5}), 2u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.remove(FlowMatch{5}), 0u);
}

TEST(FlowTable, ExpiryHidesAndEvicts) {
  FlowTable t;
  FlowEntry e = forward_to(5, 2);
  e.hard_expiry = 100_ms;
  t.install(e);
  EXPECT_NE(t.peek(Packet{0, 5, 1}, 50_ms), nullptr);
  EXPECT_EQ(t.peek(Packet{0, 5, 1}, 100_ms), nullptr);  // expired entries hidden
  EXPECT_EQ(t.expire(100_ms), 1u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlowTable, MissReturnsNull) {
  FlowTable t;
  EXPECT_EQ(t.lookup(Packet{0, 5, 1}, sim::SimTime::zero()), nullptr);
}

}  // namespace
}  // namespace curb::sdn
