#include "curb/sdn/sagent.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace curb::sdn {
namespace {

using namespace curb::sim::literals;

struct AgentFixture {
  explicit AgentFixture(SAgent::Config cfg = {.switch_id = 3, .f = 1})
      : agent{cfg, sim,
              [this](const RequestMsg& m) { broadcasts.push_back(m); },
              [this](const RequestMsg& m, const std::vector<std::uint8_t>& config) {
                accepts.push_back({m, config});
              },
              [this](const std::vector<std::uint32_t>& ids, ByzantineReason reason) {
                for (const auto id : ids) reports.push_back({id, reason});
              }} {
    agent.set_controller_group({10, 11, 12, 13});
  }

  std::vector<std::uint8_t> config_a{0x01, 0x02};
  std::vector<std::uint8_t> config_b{0x09};

  sim::Simulator sim;
  std::vector<RequestMsg> broadcasts;
  std::vector<std::pair<RequestMsg, std::vector<std::uint8_t>>> accepts;
  std::vector<std::pair<std::uint32_t, ByzantineReason>> reports;
  SAgent agent;
};

TEST(SAgent, BroadcastsRequests) {
  AgentFixture f;
  const auto id = f.agent.send_request(chain::RequestType::kPacketIn, {0xaa});
  ASSERT_EQ(f.broadcasts.size(), 1u);
  EXPECT_EQ(f.broadcasts[0].request_id, id);
  EXPECT_EQ(f.broadcasts[0].switch_id, 3u);
  EXPECT_EQ(f.broadcasts[0].type, chain::RequestType::kPacketIn);
  EXPECT_EQ(f.agent.pending_requests(), 1u);
}

TEST(SAgent, RequestIdsAreUnique) {
  AgentFixture f;
  const auto a = f.agent.send_request(chain::RequestType::kPacketIn, {});
  const auto b = f.agent.send_request(chain::RequestType::kReassign, {});
  EXPECT_NE(a, b);
}

TEST(SAgent, AcceptsAfterFPlusOneMatchingReplies) {
  AgentFixture f;
  const auto id = f.agent.send_request(chain::RequestType::kPacketIn, {});
  f.agent.on_reply(10, id, f.config_a);
  EXPECT_TRUE(f.accepts.empty());  // one reply is not enough with f = 1
  f.agent.on_reply(11, id, f.config_a);
  ASSERT_EQ(f.accepts.size(), 1u);
  EXPECT_EQ(f.accepts[0].second, f.config_a);
  EXPECT_EQ(f.agent.accepted_count(), 1u);
}

TEST(SAgent, MismatchedRepliesDoNotCountTogether) {
  AgentFixture f;
  const auto id = f.agent.send_request(chain::RequestType::kPacketIn, {});
  f.agent.on_reply(10, id, f.config_a);
  f.agent.on_reply(11, id, f.config_b);
  EXPECT_TRUE(f.accepts.empty());
  f.agent.on_reply(12, id, f.config_a);  // second vote for A: accept
  ASSERT_EQ(f.accepts.size(), 1u);
  // Controller 11 conflicted with the accepted config.
  ASSERT_EQ(f.reports.size(), 1u);
  EXPECT_EQ(f.reports[0].first, 11u);
  EXPECT_EQ(f.reports[0].second, ByzantineReason::kConflictingConfig);
}

TEST(SAgent, LateConflictingReplyIsReported) {
  AgentFixture f;
  const auto id = f.agent.send_request(chain::RequestType::kPacketIn, {});
  f.agent.on_reply(10, id, f.config_a);
  f.agent.on_reply(11, id, f.config_a);
  ASSERT_EQ(f.accepts.size(), 1u);
  f.agent.on_reply(12, id, f.config_b);  // late, conflicting
  ASSERT_EQ(f.reports.size(), 1u);
  EXPECT_EQ(f.reports[0].first, 12u);
  f.agent.on_reply(13, id, f.config_a);  // late but consistent: fine
  EXPECT_EQ(f.reports.size(), 1u);
}

TEST(SAgent, DuplicateRepliesIgnored) {
  AgentFixture f;
  const auto id = f.agent.send_request(chain::RequestType::kPacketIn, {});
  f.agent.on_reply(10, id, f.config_a);
  f.agent.on_reply(10, id, f.config_a);  // same controller twice
  EXPECT_TRUE(f.accepts.empty());
}

TEST(SAgent, RepeatedBogusRepliesFromOneControllerCannotWinQuorum) {
  // Adversarial replay: a byzantine controller re-sends its bogus config
  // many times (curb::fault dup clauses model exactly this on the wire).
  // Replays must never stack into an f+1 quorum; only distinct controllers
  // count, so the honest config wins.
  AgentFixture f;
  const auto id = f.agent.send_request(chain::RequestType::kPacketIn, {});
  for (int i = 0; i < 3; ++i) f.agent.on_reply(10, id, f.config_b);  // bogus spam
  EXPECT_TRUE(f.accepts.empty());
  f.agent.on_reply(11, id, f.config_a);
  f.agent.on_reply(11, id, f.config_a);  // honest duplicate (wire-level dup)
  EXPECT_TRUE(f.accepts.empty());        // still one controller per config
  f.agent.on_reply(12, id, f.config_a);  // second distinct controller: accept
  ASSERT_EQ(f.accepts.size(), 1u);
  EXPECT_EQ(f.accepts[0].second, f.config_a);
}

TEST(SAgent, RepliesFromOutsideGroupIgnored) {
  AgentFixture f;
  const auto id = f.agent.send_request(chain::RequestType::kPacketIn, {});
  f.agent.on_reply(99, id, f.config_a);
  f.agent.on_reply(98, id, f.config_a);
  EXPECT_TRUE(f.accepts.empty());
}

TEST(SAgent, UnknownRequestIdIgnored) {
  AgentFixture f;
  EXPECT_NO_THROW(f.agent.on_reply(10, 777, f.config_a));
  EXPECT_TRUE(f.accepts.empty());
}

TEST(SAgent, SilentControllersReportedAtTimeout) {
  AgentFixture f;
  const auto id = f.agent.send_request(chain::RequestType::kPacketIn, {});
  f.agent.on_reply(10, id, f.config_a);
  f.agent.on_reply(11, id, f.config_a);
  f.agent.on_reply(12, id, f.config_a);
  f.sim.run_until(600_ms);  // past the 500 ms reply timeout
  // Controller 13 never replied.
  ASSERT_EQ(f.reports.size(), 1u);
  EXPECT_EQ(f.reports[0].first, 13u);
  EXPECT_EQ(f.reports[0].second, ByzantineReason::kTimeout);
  EXPECT_EQ(f.agent.pending_requests(), 0u);
}

TEST(SAgent, NoTimeoutReportWhenAllReply) {
  AgentFixture f;
  const auto id = f.agent.send_request(chain::RequestType::kPacketIn, {});
  for (const std::uint32_t c : {10u, 11u, 12u, 13u}) f.agent.on_reply(c, id, f.config_a);
  f.sim.run_until(600_ms);
  EXPECT_TRUE(f.reports.empty());
}

TEST(SAgent, LazyControllerFlaggedAfterMaxRounds) {
  SAgent::Config cfg{.switch_id = 3, .f = 1};
  cfg.lazy_threshold = 200_ms;
  cfg.max_lazy_rounds = 3;
  AgentFixture f{cfg};
  for (int round = 0; round < 3; ++round) {
    const auto id = f.agent.send_request(chain::RequestType::kPacketIn, {});
    // Fast repliers.
    f.agent.on_reply(10, id, f.config_a);
    f.agent.on_reply(11, id, f.config_a);
    f.agent.on_reply(12, id, f.config_a);
    // Controller 13 replies after 300 ms, under the 500 ms timeout but lazy.
    f.sim.schedule(300_ms, [&f, id] { f.agent.on_reply(13, id, f.config_a); });
    f.sim.run_until(f.sim.now() + 1_s);
  }
  ASSERT_FALSE(f.reports.empty());
  EXPECT_EQ(f.reports.back().first, 13u);
  EXPECT_EQ(f.reports.back().second, ByzantineReason::kLazy);
}

TEST(SAgent, FastRoundResetsLazyStreak) {
  SAgent::Config cfg{.switch_id = 3, .f = 1};
  cfg.lazy_threshold = 200_ms;
  cfg.max_lazy_rounds = 3;
  AgentFixture f{cfg};
  auto lazy_round = [&f](bool lazy) {
    const auto id = f.agent.send_request(chain::RequestType::kPacketIn, {});
    f.agent.on_reply(10, id, f.config_a);
    f.agent.on_reply(11, id, f.config_a);
    f.agent.on_reply(12, id, f.config_a);
    if (lazy) {
      f.sim.schedule(300_ms, [&f, id] { f.agent.on_reply(13, id, f.config_a); });
    } else {
      f.agent.on_reply(13, id, f.config_a);
    }
    f.sim.run_until(f.sim.now() + 1_s);
  };
  lazy_round(true);
  lazy_round(true);
  EXPECT_EQ(f.agent.lazy_rounds(13), 2u);
  lazy_round(false);  // a prompt reply resets the streak
  EXPECT_EQ(f.agent.lazy_rounds(13), 0u);
  lazy_round(true);
  EXPECT_TRUE(f.reports.empty());
}

TEST(SAgent, GroupUpdateClearsDepartedLazyHistory) {
  SAgent::Config cfg{.switch_id = 3, .f = 1};
  cfg.lazy_threshold = 200_ms;
  AgentFixture f{cfg};
  const auto id = f.agent.send_request(chain::RequestType::kPacketIn, {});
  f.sim.schedule(300_ms, [&f, id] { f.agent.on_reply(13, id, f.config_a); });
  f.sim.run_until(400_ms);
  EXPECT_EQ(f.agent.lazy_rounds(13), 1u);
  f.agent.set_controller_group({10, 11, 12, 14});  // 13 replaced
  EXPECT_EQ(f.agent.lazy_rounds(13), 0u);
}

TEST(SAgent, TotalSilenceBlamesOnlyTheLeader) {
  // No replies at all: the group never ran consensus -> blame the node
  // responsible for driving it, not all four members.
  AgentFixture f;
  f.agent.set_controller_group({10, 11, 12, 13}, /*leader=*/11);
  (void)f.agent.send_request(chain::RequestType::kPacketIn, {});
  f.sim.run_until(600_ms);
  ASSERT_EQ(f.reports.size(), 1u);
  EXPECT_EQ(f.reports[0].first, 11u);
  EXPECT_EQ(f.reports[0].second, ByzantineReason::kTimeout);
}

TEST(SAgent, TotalSilenceWithoutLeaderHintReportsNothing) {
  AgentFixture f;
  f.agent.set_controller_group({10, 11, 12, 13});  // no leader hint
  (void)f.agent.send_request(chain::RequestType::kPacketIn, {});
  f.sim.run_until(600_ms);
  EXPECT_TRUE(f.reports.empty());
}

TEST(SAgent, SilentRoundsWindowDelaysReport) {
  SAgent::Config cfg{.switch_id = 3, .f = 1};
  cfg.max_silent_rounds = 3;
  AgentFixture f{cfg};
  for (int round = 0; round < 3; ++round) {
    const auto id = f.agent.send_request(chain::RequestType::kPacketIn, {});
    f.agent.on_reply(10, id, f.config_a);
    f.agent.on_reply(11, id, f.config_a);
    f.agent.on_reply(12, id, f.config_a);
    f.sim.run_until(f.sim.now() + 1_s);
    if (round < 2) {
      EXPECT_TRUE(f.reports.empty()) << "round " << round;
      EXPECT_EQ(f.agent.silent_rounds(13), static_cast<std::size_t>(round + 1));
    }
  }
  ASSERT_EQ(f.reports.size(), 1u);
  EXPECT_EQ(f.reports[0].first, 13u);
}

TEST(SAgent, ReplyResetsSilentStreak) {
  SAgent::Config cfg{.switch_id = 3, .f = 1};
  cfg.max_silent_rounds = 2;
  AgentFixture f{cfg};
  auto round = [&f](bool include_13) {
    const auto id = f.agent.send_request(chain::RequestType::kPacketIn, {});
    f.agent.on_reply(10, id, f.config_a);
    f.agent.on_reply(11, id, f.config_a);
    f.agent.on_reply(12, id, f.config_a);
    if (include_13) f.agent.on_reply(13, id, f.config_a);
    f.sim.run_until(f.sim.now() + 1_s);
  };
  round(false);
  EXPECT_EQ(f.agent.silent_rounds(13), 1u);
  round(true);  // 13 answers: streak resets
  EXPECT_EQ(f.agent.silent_rounds(13), 0u);
  round(false);
  EXPECT_TRUE(f.reports.empty());
}

TEST(SAgent, ReassignRequestsFlowLikePacketIn) {
  AgentFixture f;
  const auto id = f.agent.send_request(chain::RequestType::kReassign, {13});
  f.agent.on_reply(10, id, f.config_a);
  f.agent.on_reply(12, id, f.config_a);
  ASSERT_EQ(f.accepts.size(), 1u);
  EXPECT_EQ(f.accepts[0].first.type, chain::RequestType::kReassign);
}

}  // namespace
}  // namespace curb::sdn
