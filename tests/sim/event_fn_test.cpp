#include "curb/sim/event_fn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <functional>
#include <memory>
#include <utility>

#include "curb/sim/simulator.hpp"
#include "curb/sim/time.hpp"

namespace curb::sim {
namespace {

TEST(EventFn, InvokesSmallCallable) {
  int calls = 0;
  EventFn fn{[&calls] { ++calls; }};
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(EventFn, EmptyThrowsBadFunctionCall) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_THROW(fn(), std::bad_function_call);
}

TEST(EventFn, MoveTransfersCallableAndEmptiesSource) {
  int calls = 0;
  EventFn a{[&calls] { ++calls; }};
  EventFn b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);

  EventFn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(calls, 2);
}

TEST(EventFn, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<int>(41);
  EventFn fn{[owned = std::move(owned)] { ++*owned; }};
  fn();  // no crash; unique_ptr lived through the type-erasure move
}

TEST(EventFn, DestructorRunsCaptureDestructors) {
  auto token = std::make_shared<int>(7);
  {
    EventFn fn{[token] { (void)*token; }};
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

// A capture too large for the 64-byte inline buffer but within the 256-byte
// pooled-block class.
struct BigCapture {
  std::array<unsigned char, 128> blob{};
  int* counter = nullptr;
  void operator()() const { ++*counter; }
};

TEST(EventFn, PooledCallablesRecycleBlocks) {
  auto& pool = detail::event_block_pool();
  int calls = 0;
  BigCapture big;
  big.counter = &calls;
  static_assert(sizeof(BigCapture) > detail::kEventInlineSize);
  static_assert(sizeof(BigCapture) <= detail::kEventBlockSize);

  {
    EventFn fn{big};
    fn();
  }
  const std::size_t free_after_first = pool.free_blocks();
  EXPECT_GE(free_after_first, 1u);  // destroyed callable parked its block

  {
    EventFn fn{big};  // must reuse the parked block, not allocate
    EXPECT_EQ(pool.free_blocks(), free_after_first - 1);
    fn();
  }
  EXPECT_EQ(pool.free_blocks(), free_after_first);
  EXPECT_EQ(calls, 2);
}

TEST(EventFn, PooledMoveCarriesBlockWithoutPoolTraffic) {
  auto& pool = detail::event_block_pool();
  int calls = 0;
  BigCapture big;
  big.counter = &calls;
  EventFn a{big};
  const std::size_t free_before = pool.free_blocks();
  EventFn b{std::move(a)};  // pointer relocation: no release, no acquire
  EXPECT_EQ(pool.free_blocks(), free_before);
  b();
  EXPECT_EQ(calls, 1);
}

// Beyond the pooled class: plain heap, still correct.
struct HugeCapture {
  std::array<unsigned char, 512> blob{};
  int* counter = nullptr;
  void operator()() const { ++*counter; }
};

TEST(EventFn, OversizedCallablesStillWork) {
  static_assert(sizeof(HugeCapture) > detail::kEventBlockSize);
  int calls = 0;
  HugeCapture huge;
  huge.counter = &calls;
  EventFn fn{huge};
  fn();
  EXPECT_EQ(calls, 1);
}

TEST(EventFn, SimulatorSchedulesEverySizeClass) {
  Simulator sim;
  int calls = 0;
  BigCapture big;
  big.counter = &calls;
  HugeCapture huge;
  huge.counter = &calls;
  sim.schedule(SimTime::millis(1), [&calls] { ++calls; });
  sim.schedule(SimTime::millis(2), big);
  sim.schedule(SimTime::millis(3), huge);
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(calls, 3);
}

TEST(Simulator, AccumulatesHostRunTime) {
  Simulator sim;
  EXPECT_EQ(sim.host_run_ns(), 0u);
  for (int i = 0; i < 100; ++i) {
    sim.schedule(SimTime::millis(i), [] {});
  }
  sim.run();
  EXPECT_GT(sim.host_run_ns(), 0u);
  const auto after_run = sim.host_run_ns();
  sim.schedule(SimTime::millis(200), [] {});
  sim.step();
  EXPECT_GT(sim.host_run_ns(), after_run);
}

}  // namespace
}  // namespace curb::sim
