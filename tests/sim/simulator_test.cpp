#include "curb/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "curb/sim/rng.hpp"
#include "curb/sim/stats.hpp"
#include "curb/sim/time.hpp"

namespace curb::sim {
namespace {

using namespace curb::sim::literals;

TEST(SimTime, ArithmeticAndComparisons) {
  EXPECT_EQ(SimTime::millis(3).as_micros(), 3000);
  EXPECT_EQ((2_ms + 500_us).as_micros(), 2500);
  EXPECT_EQ((5_ms - 2_ms).as_micros(), 3000);
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_EQ(3 * 2_ms, 6_ms);
  EXPECT_EQ(6_ms / 3, 2_ms);
  EXPECT_DOUBLE_EQ(SimTime::from_seconds_f(0.25).as_seconds_f(), 0.25);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3_ms, [&] { order.push_back(3); });
  sim.schedule(1_ms, [&] { order.push_back(1); });
  sim.schedule(2_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3_ms);
}

TEST(Simulator, SimultaneousEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1_ms, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingAdvancesClock) {
  Simulator sim;
  SimTime inner_fired = SimTime::zero();
  sim.schedule(1_ms, [&] {
    sim.schedule(2_ms, [&] { inner_fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_fired, 3_ms);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1_ms, [&] { ++fired; });
  sim.schedule(5_ms, [&] { ++fired; });
  sim.run_until(2_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 2_ms);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventHandle h = sim.schedule(1_ms, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));  // double-cancel reports false
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelInvalidHandleIsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.schedule(2_ms, [&] {
    EXPECT_THROW(sim.schedule_at(1_ms, [] {}), std::logic_error);
  });
  sim.run();
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1_ms, [&] { ++fired; });
  sim.schedule(2_ms, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventBudgetThrowsOnLivelock) {
  Simulator sim;
  sim.set_event_budget(100);
  std::function<void()> loop = [&] { sim.schedule(1_us, loop); };
  sim.schedule(1_us, loop);
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowIsInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(13), 13u);
}

TEST(Rng, NextInIsInclusive) {
  Rng rng{9};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng{11};
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{5};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Summary, MeanAndStddev) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
}

TEST(Summary, EmptyIsZero) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

}  // namespace
}  // namespace curb::sim
