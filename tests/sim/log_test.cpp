#include "curb/sim/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "curb/sim/time.hpp"

namespace curb::sim {
namespace {

using namespace curb::sim::literals;

TEST(LogLevel, ToString) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

TEST(FormatLogLine, PinsStderrSinkFormat) {
  // `[%8.3fms] %-5s component: message` — the one format stderr_sink prints.
  EXPECT_EQ(format_log_line(LogLevel::kInfo, 12_ms + 345_us, "bft", "prepared"),
            "[  12.345ms] INFO  bft: prepared");
  EXPECT_EQ(format_log_line(LogLevel::kError, SimTime::zero(), "net", "drop"),
            "[   0.000ms] ERROR net: drop");
  // Wide timestamps grow the field instead of truncating.
  EXPECT_EQ(format_log_line(LogLevel::kWarn, SimTime::seconds(1000), "c", "m"),
            "[1000000.000ms] WARN  c: m");
}

TEST(Logger, LevelGating) {
  Logger logger;
  std::vector<std::string> seen;
  logger.set_sink([&](LogLevel, SimTime, std::string_view, std::string_view msg) {
    seen.emplace_back(msg);
  });
  logger.set_level(LogLevel::kWarn);

  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));

  logger.log(LogLevel::kInfo, SimTime::zero(), "c", "filtered");
  logger.log(LogLevel::kError, SimTime::zero(), "c", "kept");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "kept");
}

TEST(Logger, OffLevelDisablesEverything) {
  Logger logger;
  bool fired = false;
  logger.set_sink([&](LogLevel, SimTime, std::string_view, std::string_view) {
    fired = true;
  });
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
  logger.log(LogLevel::kError, SimTime::zero(), "c", "m");
  EXPECT_FALSE(fired);
}

TEST(Logger, NoSinkMeansDisabled) {
  Logger logger;
  logger.set_level(LogLevel::kTrace);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
}

TEST(Logger, ExchangeSinkReturnsPrevious) {
  Logger logger;
  int first_calls = 0;
  logger.set_sink([&](LogLevel, SimTime, std::string_view, std::string_view) {
    ++first_calls;
  });
  logger.set_level(LogLevel::kInfo);

  auto previous = logger.exchange_sink(
      [](LogLevel, SimTime, std::string_view, std::string_view) {});
  ASSERT_TRUE(previous);
  logger.log(LogLevel::kInfo, SimTime::zero(), "c", "to-new-sink");
  EXPECT_EQ(first_calls, 0);

  logger.set_sink(std::move(previous));
  logger.log(LogLevel::kInfo, SimTime::zero(), "c", "to-old-sink");
  EXPECT_EQ(first_calls, 1);
}

TEST(Logger, ResetRestoresDefaults) {
  Logger logger;
  logger.set_level(LogLevel::kTrace);
  logger.set_sink(stderr_sink());
  logger.reset();
  EXPECT_EQ(logger.level(), LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
}

TEST(CaptureSink, CapturesStructuredLines) {
  Logger logger;
  {
    CaptureSink capture{logger, LogLevel::kDebug};
    logger.log(LogLevel::kDebug, 3_ms, "bft", "pre-prepare");
    logger.log(LogLevel::kTrace, 4_ms, "bft", "gated");  // below capture level
    logger.log(LogLevel::kError, 5_ms, "net", "boom");
    ASSERT_EQ(capture.lines().size(), 2u);
    EXPECT_EQ(capture.lines()[0].level, LogLevel::kDebug);
    EXPECT_EQ(capture.lines()[0].time, 3_ms);
    EXPECT_EQ(capture.lines()[0].component, "bft");
    EXPECT_EQ(capture.lines()[0].message, "pre-prepare");
    EXPECT_EQ(capture.lines()[1].component, "net");
    capture.clear();
    EXPECT_TRUE(capture.lines().empty());
  }
}

TEST(CaptureSink, RestoresPreviousSinkAndLevel) {
  Logger logger;
  int outer_calls = 0;
  logger.set_sink([&](LogLevel, SimTime, std::string_view, std::string_view) {
    ++outer_calls;
  });
  logger.set_level(LogLevel::kError);
  {
    CaptureSink capture{logger, LogLevel::kTrace};
    logger.log(LogLevel::kInfo, SimTime::zero(), "c", "captured");
    EXPECT_EQ(outer_calls, 0);
    EXPECT_EQ(capture.lines().size(), 1u);
  }
  EXPECT_EQ(logger.level(), LogLevel::kError);
  logger.log(LogLevel::kError, SimTime::zero(), "c", "back-to-outer");
  EXPECT_EQ(outer_calls, 1);
}

TEST(CaptureSink, GlobalInstanceLeftPristine) {
  Logger::instance().reset();
  {
    CaptureSink capture;  // defaults to the global instance
    Logger::instance().log(LogLevel::kWarn, SimTime::zero(), "c", "m");
    EXPECT_EQ(capture.lines().size(), 1u);
  }
  EXPECT_EQ(Logger::instance().level(), LogLevel::kOff);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kError));
}

}  // namespace
}  // namespace curb::sim
