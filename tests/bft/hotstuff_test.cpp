#include "curb/bft/hotstuff.hpp"

#include <gtest/gtest.h>

#include "curb/bft/group.hpp"
#include "curb/bft/replica.hpp"
#include "curb/sim/simulator.hpp"

namespace curb::bft {
namespace {

using namespace curb::sim::literals;

PbftGroup::Options hs_options(std::size_t n = 4) {
  PbftGroup::Options opts;
  opts.group_size = n;
  opts.engine = ConsensusEngine::kHotstuff;
  return opts;
}

std::vector<std::uint8_t> payload(std::string_view s) { return {s.begin(), s.end()}; }

TEST(Hotstuff, RejectsBadConfig) {
  sim::Simulator sim;
  const auto noop_send = [](std::uint32_t, const PbftMessage&) {};
  const auto noop_deliver = [](std::uint64_t, const std::vector<std::uint8_t>&) {};
  ReplicaConfig too_small;
  too_small.group_size = 3;
  EXPECT_THROW(HotstuffReplica(too_small, sim, noop_send, noop_deliver),
               std::invalid_argument);
  ReplicaConfig bad_index;
  bad_index.replica_index = 9;
  EXPECT_THROW(HotstuffReplica(bad_index, sim, noop_send, noop_deliver),
               std::invalid_argument);
}

TEST(Hotstuff, NonLeaderCannotPropose) {
  sim::Simulator sim;
  PbftGroup group{sim, hs_options()};
  EXPECT_THROW((void)group.replica(1).propose(payload("x")), std::logic_error);
}

TEST(Hotstuff, AllHonestReplicasCommit) {
  sim::Simulator sim;
  PbftGroup group{sim, hs_options()};
  group.replica(0).propose(payload("linear"));
  sim.run();
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_EQ(group.delivered(i).size(), 1u) << "replica " << i;
    EXPECT_EQ(group.delivered(i)[0].payload, payload("linear"));
  }
}

TEST(Hotstuff, SequentialProposalsDeliverInOrder) {
  sim::Simulator sim;
  PbftGroup group{sim, hs_options(7)};
  for (int i = 0; i < 5; ++i) group.replica(0).propose(payload("p" + std::to_string(i)));
  sim.run();
  for (std::uint32_t i = 0; i < 7; ++i) {
    ASSERT_EQ(group.delivered(i).size(), 5u);
    EXPECT_EQ(group.delivered(i), group.delivered(0));
  }
}

TEST(Hotstuff, ToleratesFSilentFollowers) {
  sim::Simulator sim;
  PbftGroup group{sim, hs_options(7)};  // f = 2
  group.replica(3).set_behavior(Behavior::kSilent);
  group.replica(6).set_behavior(Behavior::kSilent);
  group.replica(0).propose(payload("resilient"));
  sim.run_until(400_ms);
  EXPECT_GE(group.replicas_delivered_at_least(1), 5u);
}

TEST(Hotstuff, EquivocatingLeaderCannotCommitConflicting) {
  sim::Simulator sim;
  PbftGroup group{sim, hs_options()};
  group.replica(0).set_behavior(Behavior::kEquivocate);
  group.replica(0).propose(payload("fork"));
  sim.run_until(300_ms);
  EXPECT_EQ(group.replicas_delivered_at_least(1), 0u);
}

TEST(Hotstuff, EquivocatingLeaderDeposedByViewChange) {
  sim::Simulator sim;
  PbftGroup group{sim, hs_options()};
  group.replica(0).set_behavior(Behavior::kEquivocate);
  group.replica(0).propose(payload("fork"));
  sim.run_until(3000_ms);
  EXPECT_GE(group.replica(1).view(), 1u);
  EXPECT_EQ(group.replica(1).view(), group.replica(2).view());
}

TEST(Hotstuff, LinearMessageComplexity) {
  // Per decision, HotStuff-style exchanges O(n) messages; PBFT O(n^2).
  auto count = [](ConsensusEngine engine, std::size_t n) {
    sim::Simulator sim;
    PbftGroup::Options opts;
    opts.group_size = n;
    opts.engine = engine;
    PbftGroup group{sim, opts};
    group.replica(0).propose({0x01});
    sim.run_until(400_ms);
    return group.messages_sent();
  };
  for (const std::size_t n : {7u, 13u}) {
    EXPECT_LT(count(ConsensusEngine::kHotstuff, n), count(ConsensusEngine::kPbft, n))
        << "n=" << n;
  }
  // Growth is ~linear: quadrupling n should far less than 16x the messages.
  const double small = static_cast<double>(count(ConsensusEngine::kHotstuff, 4));
  const double big = static_cast<double>(count(ConsensusEngine::kHotstuff, 16));
  EXPECT_LT(big / small, 8.0);
}

TEST(Hotstuff, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Simulator sim;
    PbftGroup group{sim, hs_options(7)};
    for (int i = 0; i < 3; ++i) group.replica(0).propose({static_cast<std::uint8_t>(i)});
    sim.run();
    return group.messages_sent();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Hotstuff, IgnoresPbftTraffic) {
  sim::Simulator sim;
  PbftGroup group{sim, hs_options()};
  PbftMessage msg;
  msg.type = PbftMessage::Type::kPrePrepare;  // PBFT message to a HotStuff node
  msg.sender = 2;
  EXPECT_NO_THROW(group.replica(0).on_message(msg));
}

TEST(Hotstuff, RejectsForgedQc) {
  // A QC naming fewer than 2f+1 distinct voters must be ignored.
  sim::Simulator sim;
  PbftGroup group{sim, hs_options()};
  PbftMessage qc;
  qc.type = PbftMessage::Type::kQcCommit;
  qc.view = 0;
  qc.sequence = 1;
  qc.sender = 0;
  qc.qc_voters = {0, 0, 0};  // duplicates: only one distinct voter
  group.replica(1).on_message(qc);
  sim.run_until(50_ms);
  EXPECT_TRUE(group.delivered(1).empty());
}

TEST(MakeReplica, FactoryProducesRequestedEngine) {
  sim::Simulator sim;
  const auto noop_send = [](std::uint32_t, const PbftMessage&) {};
  const auto noop_deliver = [](std::uint64_t, const std::vector<std::uint8_t>&) {};
  auto pbft = make_replica(ConsensusEngine::kPbft, {}, sim, noop_send, noop_deliver);
  auto hs = make_replica(ConsensusEngine::kHotstuff, {}, sim, noop_send, noop_deliver);
  EXPECT_NE(dynamic_cast<PbftReplica*>(pbft.get()), nullptr);
  EXPECT_NE(dynamic_cast<HotstuffReplica*>(hs.get()), nullptr);
}

}  // namespace
}  // namespace curb::bft
