#include "curb/bft/replica.hpp"

#include <gtest/gtest.h>

#include "curb/bft/group.hpp"
#include "curb/sim/simulator.hpp"

namespace curb::bft {
namespace {

using namespace curb::sim::literals;

std::vector<std::uint8_t> payload(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(PbftReplica, RejectsBadConfig) {
  sim::Simulator sim;
  const auto noop_send = [](std::uint32_t, const PbftMessage&) {};
  const auto noop_deliver = [](std::uint64_t, const std::vector<std::uint8_t>&) {};
  PbftReplica::Config too_small;
  too_small.group_size = 3;
  EXPECT_THROW(PbftReplica(too_small, sim, noop_send, noop_deliver),
               std::invalid_argument);
  PbftReplica::Config bad_index;
  bad_index.group_size = 4;
  bad_index.replica_index = 4;
  EXPECT_THROW(PbftReplica(bad_index, sim, noop_send, noop_deliver),
               std::invalid_argument);
}

TEST(PbftReplica, NonLeaderCannotPropose) {
  sim::Simulator sim;
  PbftGroup group{sim, {}};
  EXPECT_THROW((void)group.replica(1).propose(payload("x")), std::logic_error);
  EXPECT_NO_THROW((void)group.replica(0).propose(payload("x")));
}

TEST(PbftReplica, AllHonestReplicasCommit) {
  sim::Simulator sim;
  PbftGroup group{sim, {}};
  group.replica(0).propose(payload("tx-list-1"));
  sim.run();
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_EQ(group.delivered(i).size(), 1u) << "replica " << i;
    EXPECT_EQ(group.delivered(i)[0].sequence, 1u);
    EXPECT_EQ(group.delivered(i)[0].payload, payload("tx-list-1"));
  }
}

TEST(PbftReplica, SequentialProposalsDeliverInOrder) {
  sim::Simulator sim;
  PbftGroup group{sim, {}};
  group.replica(0).propose(payload("a"));
  group.replica(0).propose(payload("b"));
  group.replica(0).propose(payload("c"));
  sim.run();
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_EQ(group.delivered(i).size(), 3u);
    EXPECT_EQ(group.delivered(i)[0].payload, payload("a"));
    EXPECT_EQ(group.delivered(i)[1].payload, payload("b"));
    EXPECT_EQ(group.delivered(i)[2].payload, payload("c"));
    EXPECT_EQ(group.delivered(i)[2].sequence, 3u);
  }
}

TEST(PbftReplica, AllReplicasDeliverIdenticalHistories) {
  sim::Simulator sim;
  PbftGroup group{sim, {.group_size = 7}};
  for (int i = 0; i < 5; ++i) group.replica(0).propose(payload("p" + std::to_string(i)));
  sim.run();
  for (std::uint32_t i = 1; i < 7; ++i) {
    EXPECT_EQ(group.delivered(i), group.delivered(0)) << "replica " << i;
  }
}

TEST(PbftReplica, ToleratesOneSilentFollower) {
  sim::Simulator sim;
  PbftGroup group{sim, {}};
  group.replica(2).set_behavior(Behavior::kSilent);
  group.replica(0).propose(payload("resilient"));
  sim.run_until(400_ms);  // before view-change timeout
  // The 3 honest replicas (incl. leader) still commit; the silent one also
  // receives enough commits from honest peers to commit locally.
  EXPECT_GE(group.replicas_delivered_at_least(1), 3u);
}

TEST(PbftReplica, ToleratesFSilentInLargerGroup) {
  sim::Simulator sim;
  PbftGroup group{sim, {.group_size = 10}};  // f = 3
  group.replica(3).set_behavior(Behavior::kSilent);
  group.replica(5).set_behavior(Behavior::kSilent);
  group.replica(8).set_behavior(Behavior::kSilent);
  group.replica(0).propose(payload("tolerate-3"));
  sim.run_until(400_ms);
  EXPECT_GE(group.replicas_delivered_at_least(1), 7u);
}

TEST(PbftReplica, FullySilentLeaderIsInvisibleToPbft) {
  // A leader that never sends the pre-prepare leaves followers with nothing
  // to time out on — PBFT alone cannot detect it. Curb handles this case at
  // the s-agent layer (request timeout -> RE-ASS), which is exactly why the
  // paper adds reassignment on top of consensus.
  sim::Simulator sim;
  PbftGroup group{sim, {.view_change_timeout = sim::SimTime::millis(100)}};
  group.replica(0).set_behavior(Behavior::kSilent);
  group.replica(0).propose(payload("never-sent"));
  sim.run_until(2000_ms);
  EXPECT_EQ(group.replicas_delivered_at_least(1), 0u);
  EXPECT_EQ(group.replica(1).view(), 0u);
}

TEST(PbftReplica, SilentMinorityCannotStopCommit) {
  // With exactly f silent followers the honest 2f+1 commit without them.
  sim::Simulator sim;
  PbftGroup group{sim, {.group_size = 7}};  // f = 2
  group.replica(4).set_behavior(Behavior::kSilent);
  group.replica(6).set_behavior(Behavior::kSilent);
  group.replica(0).propose(payload("commit-anyway"));
  sim.run_until(400_ms);
  EXPECT_GE(group.replicas_delivered_at_least(1), 5u);
}

TEST(PbftReplica, EquivocatingLeaderBlocksQuorumBeforeTimeout) {
  sim::Simulator sim;
  PbftGroup group{sim, {.view_change_timeout = sim::SimTime::millis(200)}};
  group.replica(0).set_behavior(Behavior::kEquivocate);
  group.replica(0).propose(payload("fork-attempt"));
  sim.run_until(150_ms);
  // No quorum forms on either conflicting digest before the timeout.
  EXPECT_EQ(group.replicas_delivered_at_least(1), 0u);
}

TEST(PbftReplica, EquivocatingLeaderTriggersViewChange) {
  sim::Simulator sim;
  PbftGroup group{sim, {.view_change_timeout = sim::SimTime::millis(100)}};
  group.replica(0).set_behavior(Behavior::kEquivocate);
  group.replica(0).propose(payload("fork-attempt"));
  sim.run_until(3000_ms);
  // Followers who accepted a pre-prepare time out and depose the leader.
  EXPECT_GE(group.replica(1).view(), 1u);
  EXPECT_EQ(group.replica(1).view(), group.replica(2).view());
  EXPECT_EQ(group.replica(1).view(), group.replica(3).view());
  EXPECT_NE(group.replica(1).leader_index(), 0u);
}

TEST(PbftReplica, NewLeaderCanProposeAfterViewChange) {
  sim::Simulator sim;
  PbftGroup group{sim, {.view_change_timeout = sim::SimTime::millis(100)}};
  group.replica(0).set_behavior(Behavior::kEquivocate);
  group.replica(0).propose(payload("doomed"));
  sim.run_until(3000_ms);
  ASSERT_GE(group.replica(1).view(), 1u);
  ConsensusReplica& new_leader = group.current_leader();
  ASSERT_NE(new_leader.index(), 0u);
  new_leader.propose(payload("recovered"));
  sim.run_until(4000_ms);
  // The three honest replicas deliver the new proposal.
  std::size_t delivered = 0;
  for (std::uint32_t i = 1; i < 4; ++i) {
    for (const auto& d : group.delivered(i)) {
      if (d.payload == payload("recovered")) ++delivered;
    }
  }
  EXPECT_GE(delivered, 2u);
}

TEST(PbftReplica, LazyFollowerDelaysButDoesNotPreventCommit) {
  sim::Simulator sim;
  PbftGroup group{sim, {.group_size = 4}};
  group.replica(3).set_behavior(Behavior::kLazy);
  group.replica(0).propose(payload("slow-friend"));
  sim.run_until(450_ms);
  EXPECT_GE(group.replicas_delivered_at_least(1), 3u);
}

TEST(PbftReplica, MessageComplexityIsQuadratic) {
  // One consensus round in a group of size c exchanges O(c^2) messages —
  // the constant the paper's Theorem 1 builds on.
  std::vector<std::uint64_t> counts;
  for (const std::size_t c : {4u, 7u, 10u, 13u}) {
    sim::Simulator sim;
    PbftGroup group{sim, {.group_size = c}};
    group.replica(0).propose(payload("count-me"));
    sim.run_until(400_ms);
    counts.push_back(group.messages_sent());
  }
  // Quadratic growth: messages(13)/messages(4) should be ~(13/4)^2 ~ 10.
  EXPECT_GT(static_cast<double>(counts[3]) / static_cast<double>(counts[0]), 6.0);
  // And each round is at least (pre-prepare) c-1 + (prepare+commit) ~2c(c-1).
  EXPECT_GE(counts[0], 3u + 2u * 3u * 3u / 2u);
}

TEST(PbftReplica, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Simulator sim;
    PbftGroup group{sim, {.group_size = 7}};
    for (int i = 0; i < 3; ++i) group.replica(0).propose(payload("d" + std::to_string(i)));
    sim.run();
    return group.messages_sent();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(PbftReplica, IgnoresMessagesFromUnknownSenders) {
  sim::Simulator sim;
  PbftGroup group{sim, {}};
  PbftMessage msg;
  msg.type = PbftMessage::Type::kPrepare;
  msg.sender = 99;  // out of range
  EXPECT_NO_THROW(group.replica(0).on_message(msg));
  msg.sender = 0;  // own index: must also be ignored
  EXPECT_NO_THROW(group.replica(0).on_message(msg));
}

TEST(PbftReplica, IgnoresPrePrepareFromNonLeader) {
  sim::Simulator sim;
  PbftGroup group{sim, {}};
  PbftMessage msg;
  msg.type = PbftMessage::Type::kPrePrepare;
  msg.view = 0;
  msg.sequence = 1;
  msg.sender = 2;  // not the leader of view 0
  msg.payload = payload("evil");
  msg.digest = payload_digest(msg.payload);
  group.replica(1).on_message(msg);
  sim.run_until(50_ms);
  EXPECT_TRUE(group.delivered(1).empty());
}

TEST(PbftReplica, IgnoresMalformedDigest) {
  sim::Simulator sim;
  PbftGroup group{sim, {}};
  PbftMessage msg;
  msg.type = PbftMessage::Type::kPrePrepare;
  msg.view = 0;
  msg.sequence = 1;
  msg.sender = 0;
  msg.payload = payload("data");
  msg.digest = crypto::Hash256{};  // wrong digest
  group.replica(1).on_message(msg);
  sim.run_until(50_ms);
  EXPECT_TRUE(group.delivered(1).empty());
}

TEST(PbftReplica, GarbageCollectsExecutedSlots) {
  sim::Simulator sim;
  // Tiny gc window so collection is observable quickly.
  std::vector<std::unique_ptr<PbftReplica>> replicas;
  std::vector<std::size_t> delivered(4, 0);
  for (std::uint32_t i = 0; i < 4; ++i) {
    PbftReplica::Config cfg;
    cfg.replica_index = i;
    cfg.group_size = 4;
    cfg.gc_window = 4;
    replicas.push_back(std::make_unique<PbftReplica>(
        cfg, sim,
        [&sim, &replicas, i](std::uint32_t dest, const PbftMessage& msg) {
          sim.schedule(sim::SimTime::millis(1),
                       [&replicas, dest, msg] { replicas[dest]->on_message(msg); });
        },
        [&delivered, i](std::uint64_t, const std::vector<std::uint8_t>&) {
          ++delivered[i];
        }));
  }
  for (int k = 0; k < 20; ++k) {
    replicas[0]->propose({static_cast<std::uint8_t>(k)});
    sim.run();
  }
  // Every proposal delivered exactly once on every replica despite GC.
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(delivered[i], 20u) << i;
  EXPECT_EQ(replicas[0]->next_execute(), 21u);
}

TEST(PbftReplica, AdoptedViewPrunesStaleViewChangeVotes) {
  // Regression: view-change votes for views at or below the installed view
  // must be discarded on adoption, or spammed stale votes accumulate forever.
  sim::Simulator sim;
  const auto noop_send = [](std::uint32_t, const PbftMessage&) {};
  const auto noop_deliver = [](std::uint64_t, const std::vector<std::uint8_t>&) {};
  PbftReplica::Config cfg;
  cfg.group_size = 4;  // f = 1: a single vote per view never reaches f+1
  PbftReplica r{cfg, sim, noop_send, noop_deliver};

  for (std::uint64_t v = 2; v <= 10; ++v) {
    PbftMessage vc;
    vc.type = PbftMessage::Type::kViewChange;
    vc.view = v;
    vc.sender = 1;
    r.on_message(vc);
  }
  EXPECT_EQ(r.pending_view_change_views().size(), 9u);

  // A NEW-VIEW for view 11 (leader 11 % 4 == 3) installs the view; every
  // pending vote set is for a view <= 11 and must be pruned with it.
  PbftMessage nv;
  nv.type = PbftMessage::Type::kNewView;
  nv.view = 11;
  nv.sender = 3;
  r.on_message(nv);
  EXPECT_EQ(r.view(), 11u);
  EXPECT_TRUE(r.pending_view_change_views().empty());
}

TEST(PbftReplica, ReArmedSlotDoesNotFireStaleTimeout) {
  // Regression: a slot re-armed by a fresh proposal (the new leader reuses
  // the sequence it re-proposed during view change) must cancel the previous
  // timer, or the stale timer fires mid-round and forces a spurious view
  // change even though the round commits in time.
  sim::Simulator sim;
  std::vector<PbftMessage> sent;
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> delivered;
  PbftReplica::Config cfg;
  cfg.replica_index = 1;
  cfg.group_size = 4;
  cfg.view_change_timeout = sim::SimTime::millis(500);
  PbftReplica r{cfg, sim,
                [&sent](std::uint32_t, const PbftMessage& msg) { sent.push_back(msg); },
                [&delivered](std::uint64_t seq, const std::vector<std::uint8_t>& p) {
                  delivered.emplace_back(seq, p);
                }};

  // t=0: replicas 0 and 2 demand view 1 carrying a prepared entry for seq 1.
  // Replica 1 joins at f+1, reaches the 2f+1 quorum, and — as leader of
  // view 1 — re-proposes seq 1, arming its timeout (fires at t=500ms).
  for (const std::uint32_t sender : {0u, 2u}) {
    PbftMessage vc;
    vc.type = PbftMessage::Type::kViewChange;
    vc.view = 1;
    vc.sender = sender;
    vc.prepared.push_back({1, payload_digest(payload("x")), payload("x")});
    r.on_message(vc);
  }
  ASSERT_EQ(r.view(), 1u);
  ASSERT_TRUE(r.is_leader());
  sent.clear();  // the join's own VIEW-CHANGE broadcast is legitimate

  // t=100ms: the leader proposes fresh content that lands on the same
  // sequence, re-arming the slot (new deadline t=600ms). The old timer must
  // die here.
  sim.run_until(100_ms);
  const std::uint64_t seq = r.propose(payload("y"));
  ASSERT_EQ(seq, 1u);

  // t=550ms: past the stale deadline but before the live one, the round
  // completes normally.
  sim.run_until(550_ms);
  for (const std::uint32_t sender : {2u, 3u}) {
    PbftMessage prepare;
    prepare.type = PbftMessage::Type::kPrepare;
    prepare.view = 1;
    prepare.sequence = 1;
    prepare.digest = payload_digest(payload("y"));
    prepare.sender = sender;
    r.on_message(prepare);
  }
  for (const std::uint32_t sender : {2u, 3u}) {
    PbftMessage commit;
    commit.type = PbftMessage::Type::kCommit;
    commit.view = 1;
    commit.sequence = 1;
    commit.digest = payload_digest(payload("y"));
    commit.sender = sender;
    r.on_message(commit);
  }
  sim.run();

  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].first, 1u);
  EXPECT_EQ(delivered[0].second, payload("y"));
  EXPECT_EQ(r.view(), 1u);
  // The buggy stale timer fired at t=500ms and broadcast a VIEW-CHANGE for
  // view 2; with the fix no view-change message ever leaves the replica
  // after the initial adoption.
  for (const PbftMessage& msg : sent) {
    EXPECT_NE(msg.type, PbftMessage::Type::kViewChange)
        << "stale slot timeout triggered a spurious view change (view "
        << msg.view << ")";
  }
}

TEST(PbftMessage, WireSizeAccounting) {
  PbftMessage msg;
  msg.payload = payload("12345");
  const std::size_t base = msg.wire_size();
  msg.prepared.push_back({1, crypto::Hash256{}, payload("123")});
  EXPECT_GT(msg.wire_size(), base);
}

}  // namespace
}  // namespace curb::bft
