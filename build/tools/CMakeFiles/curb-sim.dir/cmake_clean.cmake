file(REMOVE_RECURSE
  "CMakeFiles/curb-sim.dir/curb_sim_main.cpp.o"
  "CMakeFiles/curb-sim.dir/curb_sim_main.cpp.o.d"
  "curb-sim"
  "curb-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curb-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
