# Empty dependencies file for curb-sim.
# This may be replaced when dependencies are built.
