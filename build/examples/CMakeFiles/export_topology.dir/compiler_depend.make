# Empty compiler generated dependencies file for export_topology.
# This may be replaced when dependencies are built.
