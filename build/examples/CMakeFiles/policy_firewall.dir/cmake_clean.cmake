file(REMOVE_RECURSE
  "CMakeFiles/policy_firewall.dir/policy_firewall.cpp.o"
  "CMakeFiles/policy_firewall.dir/policy_firewall.cpp.o.d"
  "policy_firewall"
  "policy_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
