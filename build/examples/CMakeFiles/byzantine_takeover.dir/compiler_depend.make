# Empty compiler generated dependencies file for byzantine_takeover.
# This may be replaced when dependencies are built.
