file(REMOVE_RECURSE
  "CMakeFiles/byzantine_takeover.dir/byzantine_takeover.cpp.o"
  "CMakeFiles/byzantine_takeover.dir/byzantine_takeover.cpp.o.d"
  "byzantine_takeover"
  "byzantine_takeover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byzantine_takeover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
