# Empty compiler generated dependencies file for edge_iot_burst.
# This may be replaced when dependencies are built.
