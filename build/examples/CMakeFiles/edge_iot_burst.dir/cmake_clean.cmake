file(REMOVE_RECURSE
  "CMakeFiles/edge_iot_burst.dir/edge_iot_burst.cpp.o"
  "CMakeFiles/edge_iot_burst.dir/edge_iot_burst.cpp.o.d"
  "edge_iot_burst"
  "edge_iot_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_iot_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
