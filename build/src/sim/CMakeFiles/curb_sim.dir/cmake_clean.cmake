file(REMOVE_RECURSE
  "CMakeFiles/curb_sim.dir/log.cpp.o"
  "CMakeFiles/curb_sim.dir/log.cpp.o.d"
  "libcurb_sim.a"
  "libcurb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
