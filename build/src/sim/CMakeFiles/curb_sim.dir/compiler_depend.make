# Empty compiler generated dependencies file for curb_sim.
# This may be replaced when dependencies are built.
