file(REMOVE_RECURSE
  "libcurb_sim.a"
)
