file(REMOVE_RECURSE
  "CMakeFiles/curb_sdn.dir/flow.cpp.o"
  "CMakeFiles/curb_sdn.dir/flow.cpp.o.d"
  "CMakeFiles/curb_sdn.dir/policy.cpp.o"
  "CMakeFiles/curb_sdn.dir/policy.cpp.o.d"
  "CMakeFiles/curb_sdn.dir/sagent.cpp.o"
  "CMakeFiles/curb_sdn.dir/sagent.cpp.o.d"
  "CMakeFiles/curb_sdn.dir/switch.cpp.o"
  "CMakeFiles/curb_sdn.dir/switch.cpp.o.d"
  "libcurb_sdn.a"
  "libcurb_sdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curb_sdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
