file(REMOVE_RECURSE
  "libcurb_sdn.a"
)
