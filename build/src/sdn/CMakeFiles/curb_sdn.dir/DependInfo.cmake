
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdn/flow.cpp" "src/sdn/CMakeFiles/curb_sdn.dir/flow.cpp.o" "gcc" "src/sdn/CMakeFiles/curb_sdn.dir/flow.cpp.o.d"
  "/root/repo/src/sdn/policy.cpp" "src/sdn/CMakeFiles/curb_sdn.dir/policy.cpp.o" "gcc" "src/sdn/CMakeFiles/curb_sdn.dir/policy.cpp.o.d"
  "/root/repo/src/sdn/sagent.cpp" "src/sdn/CMakeFiles/curb_sdn.dir/sagent.cpp.o" "gcc" "src/sdn/CMakeFiles/curb_sdn.dir/sagent.cpp.o.d"
  "/root/repo/src/sdn/switch.cpp" "src/sdn/CMakeFiles/curb_sdn.dir/switch.cpp.o" "gcc" "src/sdn/CMakeFiles/curb_sdn.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/curb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/curb_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/curb_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
