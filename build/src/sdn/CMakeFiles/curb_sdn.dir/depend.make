# Empty dependencies file for curb_sdn.
# This may be replaced when dependencies are built.
