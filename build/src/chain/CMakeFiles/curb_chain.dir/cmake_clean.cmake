file(REMOVE_RECURSE
  "CMakeFiles/curb_chain.dir/block.cpp.o"
  "CMakeFiles/curb_chain.dir/block.cpp.o.d"
  "CMakeFiles/curb_chain.dir/blockchain.cpp.o"
  "CMakeFiles/curb_chain.dir/blockchain.cpp.o.d"
  "CMakeFiles/curb_chain.dir/transaction.cpp.o"
  "CMakeFiles/curb_chain.dir/transaction.cpp.o.d"
  "libcurb_chain.a"
  "libcurb_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curb_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
