file(REMOVE_RECURSE
  "libcurb_chain.a"
)
