# Empty compiler generated dependencies file for curb_chain.
# This may be replaced when dependencies are built.
