file(REMOVE_RECURSE
  "libcurb_crypto.a"
)
