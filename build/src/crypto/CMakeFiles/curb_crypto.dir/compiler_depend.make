# Empty compiler generated dependencies file for curb_crypto.
# This may be replaced when dependencies are built.
