file(REMOVE_RECURSE
  "CMakeFiles/curb_crypto.dir/merkle.cpp.o"
  "CMakeFiles/curb_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/curb_crypto.dir/secp256k1.cpp.o"
  "CMakeFiles/curb_crypto.dir/secp256k1.cpp.o.d"
  "CMakeFiles/curb_crypto.dir/sha256.cpp.o"
  "CMakeFiles/curb_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/curb_crypto.dir/u256.cpp.o"
  "CMakeFiles/curb_crypto.dir/u256.cpp.o.d"
  "libcurb_crypto.a"
  "libcurb_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curb_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
