# Empty dependencies file for curb_opt.
# This may be replaced when dependencies are built.
