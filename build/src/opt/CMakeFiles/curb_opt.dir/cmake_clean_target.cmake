file(REMOVE_RECURSE
  "libcurb_opt.a"
)
