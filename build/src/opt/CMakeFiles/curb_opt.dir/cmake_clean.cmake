file(REMOVE_RECURSE
  "CMakeFiles/curb_opt.dir/cap.cpp.o"
  "CMakeFiles/curb_opt.dir/cap.cpp.o.d"
  "CMakeFiles/curb_opt.dir/lp.cpp.o"
  "CMakeFiles/curb_opt.dir/lp.cpp.o.d"
  "CMakeFiles/curb_opt.dir/milp.cpp.o"
  "CMakeFiles/curb_opt.dir/milp.cpp.o.d"
  "libcurb_opt.a"
  "libcurb_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curb_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
