# Empty compiler generated dependencies file for curb_net.
# This may be replaced when dependencies are built.
