file(REMOVE_RECURSE
  "libcurb_net.a"
)
