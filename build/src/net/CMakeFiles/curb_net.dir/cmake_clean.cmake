file(REMOVE_RECURSE
  "CMakeFiles/curb_net.dir/geo.cpp.o"
  "CMakeFiles/curb_net.dir/geo.cpp.o.d"
  "CMakeFiles/curb_net.dir/internet2.cpp.o"
  "CMakeFiles/curb_net.dir/internet2.cpp.o.d"
  "CMakeFiles/curb_net.dir/topology.cpp.o"
  "CMakeFiles/curb_net.dir/topology.cpp.o.d"
  "libcurb_net.a"
  "libcurb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
