
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/geo.cpp" "src/net/CMakeFiles/curb_net.dir/geo.cpp.o" "gcc" "src/net/CMakeFiles/curb_net.dir/geo.cpp.o.d"
  "/root/repo/src/net/internet2.cpp" "src/net/CMakeFiles/curb_net.dir/internet2.cpp.o" "gcc" "src/net/CMakeFiles/curb_net.dir/internet2.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/curb_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/curb_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/curb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
