# Empty compiler generated dependencies file for curb_core.
# This may be replaced when dependencies are built.
