file(REMOVE_RECURSE
  "CMakeFiles/curb_core.dir/assignment_state.cpp.o"
  "CMakeFiles/curb_core.dir/assignment_state.cpp.o.d"
  "CMakeFiles/curb_core.dir/baselines.cpp.o"
  "CMakeFiles/curb_core.dir/baselines.cpp.o.d"
  "CMakeFiles/curb_core.dir/codec.cpp.o"
  "CMakeFiles/curb_core.dir/codec.cpp.o.d"
  "CMakeFiles/curb_core.dir/controller.cpp.o"
  "CMakeFiles/curb_core.dir/controller.cpp.o.d"
  "CMakeFiles/curb_core.dir/messages.cpp.o"
  "CMakeFiles/curb_core.dir/messages.cpp.o.d"
  "CMakeFiles/curb_core.dir/network.cpp.o"
  "CMakeFiles/curb_core.dir/network.cpp.o.d"
  "CMakeFiles/curb_core.dir/simulation.cpp.o"
  "CMakeFiles/curb_core.dir/simulation.cpp.o.d"
  "CMakeFiles/curb_core.dir/switch_node.cpp.o"
  "CMakeFiles/curb_core.dir/switch_node.cpp.o.d"
  "libcurb_core.a"
  "libcurb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
