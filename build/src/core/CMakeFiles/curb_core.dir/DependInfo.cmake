
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assignment_state.cpp" "src/core/CMakeFiles/curb_core.dir/assignment_state.cpp.o" "gcc" "src/core/CMakeFiles/curb_core.dir/assignment_state.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/curb_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/curb_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/codec.cpp" "src/core/CMakeFiles/curb_core.dir/codec.cpp.o" "gcc" "src/core/CMakeFiles/curb_core.dir/codec.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/curb_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/curb_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/messages.cpp" "src/core/CMakeFiles/curb_core.dir/messages.cpp.o" "gcc" "src/core/CMakeFiles/curb_core.dir/messages.cpp.o.d"
  "/root/repo/src/core/network.cpp" "src/core/CMakeFiles/curb_core.dir/network.cpp.o" "gcc" "src/core/CMakeFiles/curb_core.dir/network.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/core/CMakeFiles/curb_core.dir/simulation.cpp.o" "gcc" "src/core/CMakeFiles/curb_core.dir/simulation.cpp.o.d"
  "/root/repo/src/core/switch_node.cpp" "src/core/CMakeFiles/curb_core.dir/switch_node.cpp.o" "gcc" "src/core/CMakeFiles/curb_core.dir/switch_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/curb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/curb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/curb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/curb_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/curb_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/bft/CMakeFiles/curb_bft.dir/DependInfo.cmake"
  "/root/repo/build/src/sdn/CMakeFiles/curb_sdn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
