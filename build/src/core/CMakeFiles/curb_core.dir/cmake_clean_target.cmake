file(REMOVE_RECURSE
  "libcurb_core.a"
)
