
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bft/consensus.cpp" "src/bft/CMakeFiles/curb_bft.dir/consensus.cpp.o" "gcc" "src/bft/CMakeFiles/curb_bft.dir/consensus.cpp.o.d"
  "/root/repo/src/bft/hotstuff.cpp" "src/bft/CMakeFiles/curb_bft.dir/hotstuff.cpp.o" "gcc" "src/bft/CMakeFiles/curb_bft.dir/hotstuff.cpp.o.d"
  "/root/repo/src/bft/replica.cpp" "src/bft/CMakeFiles/curb_bft.dir/replica.cpp.o" "gcc" "src/bft/CMakeFiles/curb_bft.dir/replica.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/curb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/curb_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
