# Empty dependencies file for curb_bft.
# This may be replaced when dependencies are built.
