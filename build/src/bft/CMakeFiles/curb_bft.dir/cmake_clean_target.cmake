file(REMOVE_RECURSE
  "libcurb_bft.a"
)
