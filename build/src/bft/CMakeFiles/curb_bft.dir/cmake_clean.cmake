file(REMOVE_RECURSE
  "CMakeFiles/curb_bft.dir/consensus.cpp.o"
  "CMakeFiles/curb_bft.dir/consensus.cpp.o.d"
  "CMakeFiles/curb_bft.dir/hotstuff.cpp.o"
  "CMakeFiles/curb_bft.dir/hotstuff.cpp.o.d"
  "CMakeFiles/curb_bft.dir/replica.cpp.o"
  "CMakeFiles/curb_bft.dir/replica.cpp.o.d"
  "libcurb_bft.a"
  "libcurb_bft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curb_bft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
