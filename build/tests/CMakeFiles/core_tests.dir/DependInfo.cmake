
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/assignment_state_test.cpp" "tests/CMakeFiles/core_tests.dir/core/assignment_state_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/assignment_state_test.cpp.o.d"
  "/root/repo/tests/core/baselines_test.cpp" "tests/CMakeFiles/core_tests.dir/core/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/baselines_test.cpp.o.d"
  "/root/repo/tests/core/codec_test.cpp" "tests/CMakeFiles/core_tests.dir/core/codec_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/codec_test.cpp.o.d"
  "/root/repo/tests/core/curb_integration_test.cpp" "tests/CMakeFiles/core_tests.dir/core/curb_integration_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/curb_integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/curb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/curb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/curb_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/bft/CMakeFiles/curb_bft.dir/DependInfo.cmake"
  "/root/repo/build/src/sdn/CMakeFiles/curb_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/curb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/curb_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/curb_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
