# Empty dependencies file for bft_tests.
# This may be replaced when dependencies are built.
