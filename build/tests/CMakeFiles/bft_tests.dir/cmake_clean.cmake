file(REMOVE_RECURSE
  "CMakeFiles/bft_tests.dir/bft/hotstuff_test.cpp.o"
  "CMakeFiles/bft_tests.dir/bft/hotstuff_test.cpp.o.d"
  "CMakeFiles/bft_tests.dir/bft/replica_test.cpp.o"
  "CMakeFiles/bft_tests.dir/bft/replica_test.cpp.o.d"
  "bft_tests"
  "bft_tests.pdb"
  "bft_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bft_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
