
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sdn/flow_test.cpp" "tests/CMakeFiles/sdn_tests.dir/sdn/flow_test.cpp.o" "gcc" "tests/CMakeFiles/sdn_tests.dir/sdn/flow_test.cpp.o.d"
  "/root/repo/tests/sdn/policy_test.cpp" "tests/CMakeFiles/sdn_tests.dir/sdn/policy_test.cpp.o" "gcc" "tests/CMakeFiles/sdn_tests.dir/sdn/policy_test.cpp.o.d"
  "/root/repo/tests/sdn/sagent_test.cpp" "tests/CMakeFiles/sdn_tests.dir/sdn/sagent_test.cpp.o" "gcc" "tests/CMakeFiles/sdn_tests.dir/sdn/sagent_test.cpp.o.d"
  "/root/repo/tests/sdn/switch_test.cpp" "tests/CMakeFiles/sdn_tests.dir/sdn/switch_test.cpp.o" "gcc" "tests/CMakeFiles/sdn_tests.dir/sdn/switch_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sdn/CMakeFiles/curb_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/curb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/curb_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/curb_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
