# Empty compiler generated dependencies file for sdn_tests.
# This may be replaced when dependencies are built.
