# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/crypto_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/opt_tests[1]_include.cmake")
include("/root/repo/build/tests/chain_tests[1]_include.cmake")
include("/root/repo/build/tests/bft_tests[1]_include.cmake")
include("/root/repo/build/tests/sdn_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
