file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_pdl.dir/bench_fig8_pdl.cpp.o"
  "CMakeFiles/bench_fig8_pdl.dir/bench_fig8_pdl.cpp.o.d"
  "bench_fig8_pdl"
  "bench_fig8_pdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_pdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
