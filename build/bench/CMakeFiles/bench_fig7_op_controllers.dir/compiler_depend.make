# Empty compiler generated dependencies file for bench_fig7_op_controllers.
# This may be replaced when dependencies are built.
