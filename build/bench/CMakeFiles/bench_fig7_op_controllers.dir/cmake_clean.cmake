file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_op_controllers.dir/bench_fig7_op_controllers.cpp.o"
  "CMakeFiles/bench_fig7_op_controllers.dir/bench_fig7_op_controllers.cpp.o.d"
  "bench_fig7_op_controllers"
  "bench_fig7_op_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_op_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
