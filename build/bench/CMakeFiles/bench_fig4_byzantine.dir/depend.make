# Empty dependencies file for bench_fig4_byzantine.
# This may be replaced when dependencies are built.
