file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_byzantine.dir/bench_fig4_byzantine.cpp.o"
  "CMakeFiles/bench_fig4_byzantine.dir/bench_fig4_byzantine.cpp.o.d"
  "bench_fig4_byzantine"
  "bench_fig4_byzantine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_byzantine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
