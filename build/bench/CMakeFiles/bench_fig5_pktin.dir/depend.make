# Empty dependencies file for bench_fig5_pktin.
# This may be replaced when dependencies are built.
