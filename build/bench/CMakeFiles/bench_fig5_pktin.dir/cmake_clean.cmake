file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_pktin.dir/bench_fig5_pktin.cpp.o"
  "CMakeFiles/bench_fig5_pktin.dir/bench_fig5_pktin.cpp.o.d"
  "bench_fig5_pktin"
  "bench_fig5_pktin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_pktin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
