# Empty compiler generated dependencies file for bench_fig9_reass.
# This may be replaced when dependencies are built.
