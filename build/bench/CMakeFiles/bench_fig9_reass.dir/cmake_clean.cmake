file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_reass.dir/bench_fig9_reass.cpp.o"
  "CMakeFiles/bench_fig9_reass.dir/bench_fig9_reass.cpp.o.d"
  "bench_fig9_reass"
  "bench_fig9_reass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_reass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
